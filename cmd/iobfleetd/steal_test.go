package main

import (
	"bytes"
	"net/http"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"wiban/internal/chaoskit"
)

// awaitLiveBackends polls the coordinator's membership table until
// exactly n entries are live.
func awaitLiveBackends(t *testing.T, co *daemon, n int, timeout time.Duration) {
	t.Helper()
	if !chaoskit.Settle(timeout, 50*time.Millisecond, func() bool {
		var table []memberState
		co.getJSON("/api/backends", &table)
		live := 0
		for _, m := range table {
			if m.Live {
				live++
			}
		}
		return live == n
	}) {
		t.Fatalf("fleet never reached %d live backends", n)
	}
}

// awaitMidRun polls a coordinator sweep until it is running with real
// replicated progress, so a fault injected afterwards lands mid-flight.
func awaitMidRun(t *testing.T, co *daemon, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st sweepState
		co.getJSON("/api/sweeps/"+id, &st)
		if st.terminal() {
			t.Fatalf("sweep finished before the fault: %+v (grow the spec)", st)
		}
		if st.Status == statusRunning && st.Records >= 64 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never reached mid-run state with replicated progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStealKilledBackendNeverRestarts is the self-healing acceptance
// gate: a fleet assembled purely by dynamic registration (no -backends
// flag anywhere), one backend SIGKILLed mid-sweep and never brought
// back. The survivors must absorb the dead backend's shards — its
// membership entry expires, dispatch rotates to the live entry, the
// replacement seed-pulls the partial replica — and the merged store
// must still come out byte-identical to an uninterrupted single-writer
// run. Both coupling modes, with series sampling on, because the torn
// replication tail differs across them.
func TestStealKilledBackendNeverRestarts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon kill lifecycle in -short mode")
	}
	cases := []struct {
		name string
		spec string
	}{
		{"first-order", `{"wearers":6000,"seed":51,"dur_seconds":30,"workers":2,"ble_frac":0.5,"cells":16,"series_seconds":10,"block_size":64,"shards":3}`},
		{"feedback", `{"wearers":6000,"seed":52,"dur_seconds":30,"workers":2,"ble_frac":0.5,"cells":16,"feedback":true,"max_iters":64,"tol_ppm":200,"series_seconds":10,"block_size":64,"shards":3}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			coDir := t.TempDir()
			co := startDaemon(t, coDir, "-expire", "1s", "-steal-after", "2s")
			b0 := startDaemon(t, t.TempDir(), "-register", co.base, "-heartbeat", "200ms")
			startDaemon(t, t.TempDir(), "-register", co.base, "-heartbeat", "200ms")
			awaitLiveBackends(t, co, 2, 30*time.Second)
			if got := metricValue(t, co.metrics(), "iobfleetd_backends_configured"); got != 0 {
				t.Fatalf("backends_configured %v, want 0 — this fleet must be dynamic-only", got)
			}

			id := co.submit(tc.spec).ID
			awaitMidRun(t, co, id, 90*time.Second)
			b0.cmd.Process.Signal(syscall.SIGKILL)
			b0.cmd.Wait()

			done := co.awaitStatus(id, statusDone, 300*time.Second)
			var spec sweepSpec
			mustUnmarshalSpec(t, tc.spec, &spec)
			truth, fp := groundTruthStore(t, spec)
			if done.Fingerprint != fp {
				t.Errorf("post-kill fingerprint %q != uninterrupted %q", done.Fingerprint, fp)
			}
			if done.Records != spec.Wearers {
				t.Errorf("records %d, want %d", done.Records, spec.Wearers)
			}
			if !bytes.Equal(storeBytes(t, coDir, id), truth) {
				t.Error("post-kill merged store differs byte-for-byte from an uninterrupted single-writer run")
			}

			text := co.metrics()
			if got := metricValue(t, text, "iobfleetd_shard_retries_total"); got <= 0 {
				t.Errorf("shard_retries_total %v after losing a backend for good, want > 0", got)
			}
			if got := metricValue(t, text, "iobfleetd_backends_live"); got != 1 {
				t.Errorf("backends_live %v with one backend dead, want 1", got)
			}
			// Expiry is lazy-on-read: the scrape above performed the flip, so
			// a second scrape observes the counted transition.
			if got := metricValue(t, co.metrics(), "iobfleetd_backends_expired_total"); got < 1 {
				t.Errorf("backends_expired_total %v, want >= 1 — the dead backend's heartbeats stopped", got)
			}
		})
	}
}

// TestStealStraggler pins the work-stealing path proper: a shard
// dispatched to a backend whose only runner slot is hogged by another
// sweep stalls with no progress, and once a second backend joins the
// fleet the supervisor plants a speculative copy there past the
// -steal-after deadline. The copy wins, the stuck loser is cancelled on
// its backend, and the merged result is still ground-truth-identical.
func TestStealStraggler(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon straggler lifecycle in -short mode")
	}
	co := startDaemon(t, t.TempDir(), "-steal-after", "500ms", "-expire", "5s")
	b0 := startDaemon(t, t.TempDir(), "-sweeps", "1", "-register", co.base, "-heartbeat", "200ms")
	awaitLiveBackends(t, co, 1, 30*time.Second)

	// Hog b0's single slot directly, so the shard copies dispatched to it
	// can only ever queue.
	hog := b0.submit(`{"wearers":200000,"seed":61,"dur_seconds":60,"workers":2,"block_size":16}`)
	b0.awaitStatus(hog.ID, statusRunning, 30*time.Second)

	raw := `{"wearers":120,"seed":62,"dur_seconds":10,"workers":2,"ble_frac":0.5,"cells":8,"block_size":16,"shards":2}`
	id := co.submit(raw).ID

	// Give the supervisors time to dispatch to the hogged backend and
	// stall, then offer them somewhere to steal to.
	time.Sleep(time.Second)
	startDaemon(t, t.TempDir(), "-register", co.base, "-heartbeat", "200ms")

	done := co.awaitStatus(id, statusDone, 180*time.Second)
	var spec sweepSpec
	mustUnmarshalSpec(t, raw, &spec)
	_, fp := groundTruthStore(t, spec)
	if done.Fingerprint != fp {
		t.Errorf("stolen sweep fingerprint %q != ground truth %q", done.Fingerprint, fp)
	}
	text := co.metrics()
	if got := metricValue(t, text, "iobfleetd_shards_stolen_total"); got < 1 {
		t.Errorf("shards_stolen_total %v, want >= 1", got)
	}
	if got := metricValue(t, text, "iobfleetd_shards_dispatched_total"); got < 3 {
		t.Errorf("shards_dispatched_total %v, want >= 3 (2 shards + at least one speculative copy)", got)
	}

	// The losing copies on the hogged backend must be cancelled — queued
	// work for a shard someone else finished is a leak.
	if !chaoskit.Settle(30*time.Second, 100*time.Millisecond, func() bool {
		var all []sweepState
		b0.getJSON("/api/sweeps", &all)
		for _, st := range all {
			if strings.HasPrefix(st.Spec.Label, id+"/") && !st.terminal() {
				return false
			}
		}
		return metricValue(t, b0.metrics(), "iobfleetd_sweeps_queued") == 0
	}) {
		var all []sweepState
		b0.getJSON("/api/sweeps", &all)
		t.Errorf("losing shard copies never settled on the hogged backend: %+v", all)
	}

	// Cancel the hog through the API and watch the backend's gauges drain
	// to zero — no slot leaks from either the steal or the cancel.
	if code := deleteSweep(t, b0.base, hog.ID); code != http.StatusOK {
		t.Fatalf("DELETE hog: code %d, want 200", code)
	}
	b0.awaitStatus(hog.ID, statusCancelled, 60*time.Second)
	text = b0.metrics()
	if got := metricValue(t, text, "iobfleetd_sweeps_running"); got != 0 {
		t.Errorf("hogged backend running gauge %v after cancel, want 0", got)
	}
	if got := metricValue(t, text, "iobfleetd_sweeps_queued"); got != 0 {
		t.Errorf("hogged backend queued gauge %v after cancel, want 0", got)
	}
}

// TestCancelShardedPropagates drives DELETE through the whole
// coordinator stack: the parent parks cancelled, every sub-sweep on
// every backend is disowned, the partial shard stores are removed, and
// no gauge on any daemon is left holding a slot.
func TestCancelShardedPropagates(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon lifecycle in -short mode")
	}
	b0 := startDaemon(t, t.TempDir())
	b1 := startDaemon(t, t.TempDir())
	coDir := t.TempDir()
	co := startDaemon(t, coDir, "-backends", b0.base+","+b1.base)

	id := co.submit(`{"wearers":6000,"seed":63,"dur_seconds":30,"workers":2,"ble_frac":0.5,"cells":16,"block_size":64,"shards":3}`).ID
	awaitMidRun(t, co, id, 90*time.Second)

	if code := deleteSweep(t, co.base, id); code != http.StatusOK {
		t.Fatalf("DELETE running sharded sweep: code %d, want 200", code)
	}
	st := co.awaitStatus(id, statusCancelled, 60*time.Second)
	if !st.CancelRequested {
		t.Errorf("cancelled parent state %+v, want the request recorded", st)
	}

	// Partials are garbage once the parent is cancelled.
	if !chaoskit.Settle(30*time.Second, 100*time.Millisecond, func() bool {
		left, _ := filepath.Glob(filepath.Join(coDir, id+".shard*"))
		return len(left) == 0
	}) {
		left, _ := filepath.Glob(filepath.Join(coDir, id+".shard*"))
		t.Errorf("partial shard stores leaked after cancellation: %v", left)
	}

	// Every sub-sweep must reach a terminal state on its backend — none
	// may keep running (or queued) for a coordinator that disowned them —
	// and every daemon's gauges must return to zero.
	settled := func(d *daemon) bool {
		var all []sweepState
		d.getJSON("/api/sweeps", &all)
		for _, s := range all {
			if !s.terminal() {
				return false
			}
		}
		text := d.metrics()
		return metricValue(t, text, "iobfleetd_sweeps_queued") == 0 &&
			metricValue(t, text, "iobfleetd_sweeps_running") == 0
	}
	if !chaoskit.Settle(60*time.Second, 100*time.Millisecond, func() bool {
		return settled(co) && settled(b0) && settled(b1)
	}) {
		t.Error("fleet never settled after cancelling the sharded parent")
	}
	for _, b := range []*daemon{b0, b1} {
		var all []sweepState
		b.getJSON("/api/sweeps", &all)
		for _, s := range all {
			if s.Status == statusFailed {
				t.Errorf("sub-sweep %s failed during cancellation: %s", s.ID, s.Error)
			}
		}
	}
	if got := metricValue(t, co.metrics(), "iobfleetd_sweeps_cancelled_total"); got < 1 {
		t.Errorf("cancelled_total %v on the coordinator, want >= 1", got)
	}
}
