// Command iobfleetd is the long-running fleet service: it accepts sweep
// submissions over HTTP, runs them on a bounded pool of in-process
// runners, and stays observable and killable the whole time.
//
// Usage:
//
//	iobfleetd -listen 127.0.0.1:9370 -data /var/lib/iobfleetd -sweeps 2 \
//	    [-backends http://b0:9370,http://b1:9370] \
//	    [-register http://co:9370 -heartbeat 2s] \
//	    [-expire 10s] [-steal-after 15s] [-retain 100]
//
// # Endpoints
//
// Submissions are the iobfleet flag surface as JSON (wearers, seed,
// dur_seconds, workers, per_spread, batt_spread, harvest_prob,
// drop_prob, ble_frac, drain, cells, density, feedback, max_iters,
// tol_ppm, series_seconds, block_size, shards — all literal, no
// server-side defaults beyond zero values):
//
//	POST   /api/sweeps                  submit → 202 + sweep state
//	GET    /api/sweeps                  all sweeps, submission order
//	GET    /api/sweeps/{id}             one sweep's state
//	DELETE /api/sweeps/{id}             cancel (200; 409 once terminal)
//	GET    /api/sweeps/{id}/progress    NDJSON progress stream (curl -N)
//	POST   /api/loads                   phase-1 gather for a shard spec
//	GET    /api/sweeps/{id}/store       committed telemetry prefix
//	GET    /api/sweeps/{id}/shards/{k}/store  a coordinator's shard partial
//	POST   /api/backends                register/heartbeat a backend
//	GET    /api/backends                the membership table
//	DELETE /api/backends?url=...        deregister (a heartbeat's goodbye)
//	GET    /metrics                     Prometheus text exposition 0.0.4
//	GET    /healthz                     readiness (503 while draining)
//	GET    /debug/pprof/...             live profiling
//
// The store endpoints serve exactly the checkpointed byte prefix —
// never the volatile tail or the trailing index — honoring ?from= for
// incremental pulls and reporting X-Committed-Offset, X-Next-Wearer
// and X-Sweep-Status headers, which is what makes a store an
// append-only replication feed.
//
//	curl -d '{"wearers":1000,"seed":42,"dur_seconds":600,"cells":50}' \
//	    localhost:9370/api/sweeps
//
// Every sweep streams its records into a telemetry store
// (<data>/<id>.wtl, see wiban/internal/telemetry) beside a JSON state
// sidecar (<data>/<id>.json, written atomically), so the daemon's word
// about a sweep is always durable truth: the progress stream ticks only
// on committed blocks, and the /metrics byte/block counters count only
// checkpointed writes. Progress events are full state snapshots, lossy
// for intermediate ticks under a slow reader but guaranteed for the
// final line ("final": true). Submissions past the queue cap are
// refused with 503 before an ID is allocated or anything touches disk;
// recovery on restart bypasses the cap entirely, so a backlog larger
// than it re-queues rather than deadlocking startup.
//
// # Metric catalog
//
// Sweep lifecycle (counters, plus queue gauges):
//
//	iobfleetd_sweeps_submitted_total    accepted by POST /api/sweeps
//	iobfleetd_sweeps_started_total      picked up by a runner (resumes included)
//	iobfleetd_sweeps_completed_total    finished with a fingerprint
//	iobfleetd_sweeps_failed_total       ended by an error
//	iobfleetd_sweeps_interrupted_total  checkpointed and parked by a drain
//	iobfleetd_sweeps_resumed_total      continued from a telemetry checkpoint
//	iobfleetd_sweeps_queued             waiting for a runner (gauge)
//	iobfleetd_sweeps_running            currently executing (gauge)
//
// Engine (func metrics over the shared fleet.Stats the zero-alloc hot
// path updates with atomics; rate() over the first two gives live
// wearers/s and kernel events/s):
//
//	iobfleetd_wearers_simulated_total
//	iobfleetd_kernel_events_total
//	iobfleetd_phase1_gather_seconds_total
//	iobfleetd_phase1_solve_seconds_total
//	iobfleetd_equilibrium_iterations_total
//	iobfleetd_equilibrium_cells_total
//	iobfleetd_reorder_window_depth      (gauge)
//
// Telemetry and per-sweep distributions:
//
//	iobfleetd_telemetry_blocks_written_total
//	iobfleetd_telemetry_bytes_written_total
//	iobfleetd_sweep_duration_seconds    (histogram)
//	iobfleetd_phase1_duration_seconds   (histogram)
//	iobfleetd_sweep_allocated_bytes     (histogram; process-wide
//	                                    TotalAlloc delta per sweep — an
//	                                    upper bound under concurrency)
//
// Shard dispatch and fleet membership (coordinator side):
//
//	iobfleetd_shards_dispatched_total   sub-sweeps shipped to a backend
//	iobfleetd_shards_stolen_total       speculative copies planted past -steal-after
//	iobfleetd_shard_retries_total       dispatch/stream attempts retried
//	iobfleetd_shard_fetch_bytes_total   committed store bytes pulled back
//	iobfleetd_backends_configured       size of the -backends list (gauge)
//	iobfleetd_backends_registered       membership table size incl. static (gauge)
//	iobfleetd_backends_live             members currently past their TTL gate (gauge)
//	iobfleetd_backend_registrations_total  POST /api/backends registrations + revivals
//	iobfleetd_backends_expired_total    live→expired transitions (lazy, counted on read)
//
// Cancellation and retention:
//
//	iobfleetd_sweeps_cancelled_total    parked terminally by DELETE
//	iobfleetd_sweeps_retired_total      terminal sweeps GC'd past -retain
//
// Go runtime: iobfleetd_goroutines, iobfleetd_heap_alloc_bytes,
// iobfleetd_gc_cycles_total.
//
// # Sharded dispatch
//
// A sweep submitted with "shards": N > 1 makes this daemon a
// coordinator: it splits the wearer range [0, Wearers) into N
// contiguous sub-ranges, submits each as an ordinary sweep (same spec,
// first_wearer/end_wearer set, shards stripped) to the live fleet —
// the -backends list plus every dynamically registered member (see
// Fleet membership below) — or to itself over loopback when the table
// is empty, which needs spare -sweeps slots because the coordinator
// sweep occupies one while its shards run — then streams each shard's
// committed store bytes back incrementally and merges the replicas
// into one <id>.wtl. Because per-wearer seeds derive from absolute
// indices and block boundaries are deterministic, every backend
// executing a given shard writes the identical byte sequence, so the
// merged store — fingerprint, blocks, checkpoint and trailing index —
// is bit-identical to the same spec run unsharded in a single process.
// That guarantee covers series sampling: a sharded sweep accepts
// series_seconds, each backend commits its record+series frame pairs in
// one write (so the replicated committed prefix always ends after a
// complete pair), and the merge re-pairs and re-encodes the samples at
// the merged block boundaries — iobtrace query reads identical numbers
// off the merged store and a single-backend run's.
//
// Feedback coupling adds a round: the coordinator first POSTs each
// range to /api/loads on its backends, merges the partial load tables
// and member windows, runs the one deterministic equilibrium solve
// itself, and ships each shard its windowed slice of the solution in
// the sub-spec, so phase 2 everywhere sees the exact equilibrium a
// single process would have computed.
//
// The fault model is label-idempotent re-dispatch. Sub-sweeps carry a
// deterministic label; re-submitting one is a no-op on a backend that
// already holds it, so a lost connection just re-asks. A backend that
// dies and comes back on the same address resumes its recovered shard
// from its own checkpoint; a replacement backend with an empty data
// dir seed-pulls the coordinator's partial replica (the shards/{k}
// endpoint) and appends from there. Backend selection consults
// /healthz, which reports readiness — 200 while accepting work, 503
// once draining — so a draining backend stops receiving shards. Each
// sweep response carries an X-Iobfleetd-Instance nonce, so a
// supervisor notices a backend that was killed and restarted between
// two polls even when the address never changed.
// TestShardedFingerprint and TestShardedSeriesFingerprint (bytes and
// fingerprint vs an unsharded run, both coupling modes, series on and
// off) and TestShardedChaosKillResume (a backend SIGKILLed mid-sweep
// and resurrected, byte-identity required afterwards) pin the contract.
//
// # Fleet membership
//
// Besides the static -backends list, backends join the fleet by
// registering themselves: a daemon started with -register posts its
// own base URL to each named coordinator's /api/backends and keeps
// heartbeating it every -heartbeat interval; on drain the loop sends a
// goodbye DELETE so the coordinator stops selecting a backend that is
// about to exit. A member that falls silent past the coordinator's
// -expire TTL stops being selected for new shard placement — but
// expiry gates placement only: a supervisor's host list is sticky, so
// replication keeps pulling from an "expired" backend that still
// answers, and an in-flight shard is never dropped by a missed
// heartbeat. Expiry is lazy-on-read (checked when the table is
// consulted, counted once per live→expired transition), an expired
// entry stays in the table and revives in place on the next heartbeat
// (one row per address, however often it blinks), and the dynamic
// table persists beside the sweeps (<data>/backends.json) so a
// coordinator restart recovers its fleet without waiting for the next
// heartbeat round. While the table is non-empty but nothing is live,
// sharded dispatch waits for a member to come back rather than falling
// back to loopback. TestMembershipTable and
// TestMembershipExpiryKeepsInFlightDispatch pin the semantics.
//
// # Work-stealing
//
// A shard whose committed progress stalls for longer than -steal-after
// while other backends sit live is speculatively re-dispatched: the
// supervisor plants a copy of the sub-sweep (same deterministic label,
// disjoint data dirs) on another live backend and replicates from
// whichever copy commits first; completion is committed-prefix wins —
// a copy only finishes the shard when its replicated bytes reach the
// shard's end. The losing copy is cancelled on its backend so no queue
// slot or runner is left working for a shard someone else finished.
// Because every backend executing a shard writes the identical byte
// sequence, speculation never risks divergence — the merged store is
// byte-identical no matter which copy won. -steal-after 0 disables
// stealing. TestStealStraggler (a backend whose only slot is hogged;
// the copy wins elsewhere and the loser is cancelled) and
// TestStealKilledBackendNeverRestarts (a SIGKILLed backend that never
// comes back; survivors absorb its shards, byte-identity required)
// pin it, and TestSustainedChaos keeps the whole self-healing surface
// honest under a seeded adversary of kills, drains, restarts, spawns
// and cancellations.
//
// # Cancellation
//
// DELETE /api/sweeps/{id} parks a sweep terminally from any live
// state: a queued sweep never starts (its slot is released), a running
// sweep aborts at its next record boundary, and a coordinator sweep
// additionally cancels every sub-sweep on every backend and removes
// its partial shard stores — cancelled means no runner, no queue slot
// and no partials anywhere in the fleet. The request is idempotent
// (re-DELETE of a cancelled sweep is 200 without recounting); a sweep
// already done or failed answers 409. Cancellation is durable: the
// request is recorded in the sidecar, so a daemon killed between the
// DELETE and the park finalizes the cancel on recovery instead of
// resuming the sweep. The committed telemetry written before the
// cancel stays on disk (useful as a partial trace) until retention
// collects it. TestCancelQueued/Running/Recovery and
// TestCancelShardedPropagates pin the path.
//
// # Retention
//
// -retain N keeps the newest N terminal (done or cancelled) sweeps in
// -data and garbage-collects older ones — sidecar, store and
// checkpoint — counting a retirement per collected sweep. Resumable
// state is never touched: interrupted, queued and running sweeps don't
// count against N and their stores and checkpoints survive both the
// steady-state prune and the boot-time prune a restart runs before
// serving. 0 (the default) keeps everything. TestRetainGC pins both
// sides.
//
// # Drain and restart
//
// Shutdown is a first-class path, not an accident. On SIGTERM or SIGINT
// the daemon drains: running sweeps abort at their next record boundary
// with the telemetry checkpoint intact, park as "interrupted" (their
// progress streams end with a final event), queued sweeps stay queued,
// new submissions get 503, and the process exits 0. On the next start
// with the same -data, every non-terminal sweep — interrupted, queued,
// or mid-run crashed (SIGKILL included: recovery needs only the
// sidecars and store checkpoints on disk) — re-enters the queue in ID
// order and resumes from its checkpoint. Resumed fingerprints are
// bit-identical to uninterrupted runs, the same contract iobfleet
// -resume keeps; TestChaosKillResume is the pinning test.
//
// /debug/pprof serves live profiles from the same mux; pair it with the
// iobfleet -cpuprofile/-memprofile flags when you want offline capture
// of a single sweep instead.
package main
