package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"wiban/internal/obs"
	"wiban/internal/telemetry"
)

// awaitSweep polls an in-process sweep until it reaches status.
func awaitSweep(t *testing.T, m *manager, id, status string, timeout time.Duration) sweepState {
	t.Helper()
	sw, ok := m.get(id)
	if !ok {
		t.Fatalf("no sweep %s", id)
	}
	deadline := time.Now().Add(timeout)
	for {
		st := sw.snapshot()
		if st.Status == status {
			return st
		}
		if st.terminal() && st.Status != status {
			t.Fatalf("sweep %s reached %q (error %q) waiting for %q", id, st.Status, st.Error, status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s stuck at %q waiting for %q", id, st.Status, status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRetainGC pins -retain's contract from both sides: beyond the
// newest N terminal sweeps the oldest lose their sidecar, store and
// checkpoint — but resumable state (an interrupted sweep a drain
// parked) is never touched, survives a restart's boot-time prune, and
// actually resumes to completion afterwards.
func TestRetainGC(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	m, err := newManager(dir, 2, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.retain = 2
	m.start("http://unused.invalid")

	// Three fast sweeps to completion: the third finish must prune the
	// first (newest 2 retained).
	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		st, err := m.submit(minimalSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		awaitSweep(t, m, id, statusDone, 60*time.Second)
	}
	if _, ok := m.get(ids[0]); ok {
		t.Errorf("sweep %s still registered beyond -retain 2", ids[0])
	}
	for _, name := range []string{ids[0] + ".json", ids[0] + ".wtl"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("%s survived retention GC (err %v)", name, err)
		}
	}
	for _, id := range ids[1:] {
		if _, err := os.Stat(filepath.Join(dir, id+".wtl")); err != nil {
			t.Errorf("retained sweep %s lost its store: %v", id, err)
		}
	}
	if got := metricValue(t, scrape(t, reg), "iobfleetd_sweeps_retired_total"); got != 1 {
		t.Errorf("retired_total %v, want 1", got)
	}

	// Park a long sweep mid-run via drain: interrupted, with a resumable
	// checkpoint on disk.
	longSpec := sweepSpec{Wearers: 6000, Seed: 9, DurSeconds: 10, Workers: 2, BlockSize: 16}
	long, err := m.submit(longSpec)
	if err != nil {
		t.Fatal(err)
	}
	sw, _ := m.get(long.ID)
	deadline := time.Now().Add(60 * time.Second)
	for sw.snapshot().Records == 0 {
		if st := sw.snapshot(); st.terminal() {
			t.Fatalf("long sweep finished before the drain: %+v (grow the spec)", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("long sweep never committed progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
	m.beginDrain()
	if st := sw.snapshot(); st.Status != statusInterrupted {
		t.Fatalf("drained sweep parked %q, want interrupted", st.Status)
	}
	storePath := filepath.Join(dir, long.ID+".wtl")
	for _, p := range []string{storePath, telemetry.CheckpointPath(storePath)} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("interrupted sweep missing resumable state %s: %v", p, err)
		}
	}

	// Restart with the same -retain: the boot-time prune must spare the
	// re-queued interrupted sweep and everything resumable about it.
	m2, err := newManager(dir, 2, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m2.retain = 2
	m2.pruneRetained()
	sw2, ok := m2.get(long.ID)
	if !ok || sw2.snapshot().Status != statusQueued {
		t.Fatalf("interrupted sweep recovered as %+v, want re-queued", sw2.snapshot())
	}
	for _, p := range []string{storePath, telemetry.CheckpointPath(storePath)} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("retention GC ate resumable state %s: %v", p, err)
		}
	}

	// And the spared state must actually be usable: resume to done with
	// the full population accounted for.
	m2.start("http://unused.invalid")
	defer m2.beginDrain()
	done := awaitSweep(t, m2, long.ID, statusDone, 300*time.Second)
	if done.Records != longSpec.Wearers {
		t.Errorf("resumed sweep records %d, want %d", done.Records, longSpec.Wearers)
	}
	// Its completion makes three terminal sweeps again; the oldest done
	// sweep (ids[1]) rotates out.
	if _, ok := m2.get(ids[1]); ok {
		t.Errorf("sweep %s still registered after the resumed sweep pushed it past -retain", ids[1])
	}
	if _, err := os.Stat(filepath.Join(dir, ids[1]+".wtl")); !os.IsNotExist(err) {
		t.Errorf("%s.wtl survived retention GC (err %v)", ids[1], err)
	}
}
