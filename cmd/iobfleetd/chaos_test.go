package main

import (
	"encoding/json"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestChaosKillResume is the acceptance gate for crash-proof drain: two
// sweeps running concurrently, the daemon SIGKILLed mid-flight (no
// drain, no checkpoint flush — whatever the last block commit left on
// disk is all the next process gets), then a restart on the same data
// directory. Every sweep must finish with a fingerprint bit-identical
// to an uninterrupted in-process run of the same spec, and the killed
// sweeps must have actually resumed from their checkpoints rather than
// silently restarted from scratch.
func TestChaosKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second kill/restart lifecycle in -short mode")
	}
	dir := t.TempDir()
	d := startDaemon(t, dir, "-sweeps", "2")

	// Two different specs — different seeds and physics — so a crossed
	// resume (sweep A continuing from sweep B's checkpoint) cannot pass.
	specs := []string{
		`{"wearers":6000,"seed":3,"dur_seconds":30,"workers":2,"ble_frac":0.5,"block_size":64}`,
		`{"wearers":6000,"seed":4,"dur_seconds":30,"workers":2,"ble_frac":1,"cells":16,"block_size":64}`,
	}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		ids[i] = d.submit(spec).ID
	}

	// Kill only once both sweeps are mid-run with durable progress: at
	// least one committed block each, neither finished.
	deadline := time.Now().Add(60 * time.Second)
	for {
		ready := 0
		for _, id := range ids {
			var cur sweepState
			d.getJSON("/api/sweeps/"+id, &cur)
			if cur.terminal() {
				t.Fatalf("sweep %s finished before the kill: %+v (grow the spec)", id, cur)
			}
			if cur.Status == statusRunning && cur.Blocks >= 1 {
				ready++
			}
		}
		if ready == len(ids) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweeps never reached concurrent mid-run state")
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.cmd.Process.Signal(syscall.SIGKILL)
	d.cmd.Wait() // no exit-code claim: SIGKILL is not graceful, that's the point

	// Restart on the same directory: recovery re-queues both, resumes
	// from the checkpoints and runs them out.
	d2 := startDaemon(t, dir, "-sweeps", "2")
	for i, id := range ids {
		done := d2.awaitStatus(id, statusDone, 180*time.Second)
		var spec sweepSpec
		mustUnmarshalSpec(t, specs[i], &spec)
		f, _, err := spec.build(nil)
		if err != nil {
			t.Fatal(err)
		}
		rep, _, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		if done.Fingerprint != rep.Fingerprint() {
			t.Errorf("sweep %s: resumed fingerprint %q != uninterrupted %q", id, done.Fingerprint, rep.Fingerprint())
		}
		if done.Records != spec.Wearers {
			t.Errorf("sweep %s: %d records, want %d", id, done.Records, spec.Wearers)
		}
	}
	// Both were mid-run with committed blocks at the kill, so both must
	// have resumed — a scratch restart would also pass the fingerprint
	// check, and this is what rules it out.
	if got := metricValue(t, d2.metrics(), "iobfleetd_sweeps_resumed_total"); got != float64(len(ids)) {
		t.Errorf("resumed_total %v, want %d", got, len(ids))
	}
	d2.cmd.Process.Signal(syscall.SIGTERM)
	if code := d2.wait(); code != 0 {
		t.Fatalf("post-chaos daemon exited %d on SIGTERM, want 0", code)
	}
}

// mustUnmarshalSpec parses and normalizes a JSON spec exactly the way
// the daemon does, so the expected-fingerprint runs use the identical
// fleet construction.
func mustUnmarshalSpec(t *testing.T, raw string, spec *sweepSpec) {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		t.Fatal(err)
	}
	if err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
}
