package main

import (
	"fmt"
	"math"

	"wiban/internal/fleet"
	"wiban/internal/spectrum"
	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// sweepSpec is one sweep submission: the iobfleet flag surface as JSON.
// Every field is literal — an omitted numeric field is zero, not a
// server-side default — so the sidecar-persisted spec alone re-derives
// the sweep bit-for-bit after a restart. Field names mirror the CLI
// flags (dur → dur_seconds, series → series_seconds, tol → tol_ppm).
type sweepSpec struct {
	Wearers    int     `json:"wearers"`
	Seed       int64   `json:"seed"`
	DurSeconds float64 `json:"dur_seconds"`
	Workers    int     `json:"workers,omitempty"`

	PERSpread     float64 `json:"per_spread,omitempty"`
	BatterySpread float64 `json:"batt_spread,omitempty"`
	HarvesterProb float64 `json:"harvest_prob,omitempty"`
	DropNodeProb  float64 `json:"drop_prob,omitempty"`
	BLEFraction   float64 `json:"ble_frac,omitempty"`
	Drain         bool    `json:"drain,omitempty"`

	Cells   int     `json:"cells,omitempty"`
	Density float64 `json:"density,omitempty"`

	Feedback bool  `json:"feedback,omitempty"`
	MaxIters int   `json:"max_iters,omitempty"`
	TolPPM   int64 `json:"tol_ppm,omitempty"`

	SeriesSeconds float64 `json:"series_seconds,omitempty"`
	BlockSize     int     `json:"block_size,omitempty"`
}

// normalize validates the spec and resolves density into cells (the two
// are one knob, exactly as in the CLI), so the persisted spec is
// canonical: a restart re-derives the identical sweep without repeating
// the derivation.
func (s *sweepSpec) normalize() error {
	if s.Wearers <= 0 {
		return fmt.Errorf("non-positive population %d", s.Wearers)
	}
	if !(s.DurSeconds > 0) { // also catches NaN
		return fmt.Errorf("non-positive span %v", s.DurSeconds)
	}
	if s.Workers < 0 {
		return fmt.Errorf("negative worker count %d", s.Workers)
	}
	if s.Density != 0 {
		if !(s.Density > 0) {
			return fmt.Errorf("non-positive density %v", s.Density)
		}
		if s.Cells != 0 {
			return fmt.Errorf("cells and density are two spellings of the same knob; pass one")
		}
		s.Cells = cellsForDensity(s.Wearers, s.Density)
		s.Density = 0
	}
	if s.Cells < 0 {
		return fmt.Errorf("negative cell count %d", s.Cells)
	}
	if s.Feedback {
		if s.Cells <= 0 {
			return fmt.Errorf("feedback needs a spectrum topology; pass cells or density")
		}
		if s.MaxIters < 0 {
			return fmt.Errorf("negative feedback iteration cap %d", s.MaxIters)
		}
		if s.TolPPM < 0 {
			return fmt.Errorf("negative feedback tolerance %d", s.TolPPM)
		}
	} else if s.MaxIters != 0 || s.TolPPM != 0 {
		return fmt.Errorf("max_iters/tol_ppm are feedback knobs; set feedback too")
	}
	if s.SeriesSeconds < 0 || math.IsNaN(s.SeriesSeconds) {
		return fmt.Errorf("negative series cadence %v", s.SeriesSeconds)
	}
	if s.BlockSize < 0 {
		return fmt.Errorf("negative block size %d", s.BlockSize)
	}
	gen := s.generator()
	if err := gen.Validate(); err != nil {
		return err
	}
	return nil
}

// cellsForDensity derives the cell count hitting a target wearers-per-
// cell: ceil(wearers/density), never below 1 — the same arithmetic as
// the iobfleet -density flag.
func cellsForDensity(wearers int, density float64) int {
	cells := int(math.Ceil(float64(wearers) / density))
	if cells < 1 {
		return 1
	}
	return cells
}

// generator builds the population generator the spec describes.
func (s *sweepSpec) generator() *fleet.Generator {
	return &fleet.Generator{
		Base:          fleet.DefaultBase(),
		PERSpread:     s.PERSpread,
		BatterySpread: s.BatterySpread,
		HarvesterProb: s.HarvesterProb,
		DropNodeProb:  s.DropNodeProb,
		BLEFraction:   s.BLEFraction,
		DrainBattery:  s.Drain,
	}
}

// build assembles the runnable fleet and the telemetry metadata of a
// normalized spec — exactly the composition cmd/iobfleet performs from
// its flags, with the engine's Stats hook attached for live metrics.
func (s *sweepSpec) build(stats *fleet.Stats) (*fleet.Fleet, telemetry.Meta) {
	gen := s.generator()
	f := &fleet.Fleet{
		Wearers:  s.Wearers,
		Seed:     s.Seed,
		Scenario: gen.Scenario(),
		Loads:    gen.LoadScenario(),
		Span:     units.Duration(s.DurSeconds),
		Workers:  s.Workers,
		Series:   units.Duration(s.SeriesSeconds),
		Stats:    stats,
	}
	tag := gen.Tag()
	if s.Cells > 0 {
		f.Coupling = &fleet.Coupling{Cells: s.Cells, Model: spectrum.Default()}
		if s.Feedback {
			f.Coupling.Feedback = true
			f.Coupling.MaxIters = s.MaxIters
			f.Coupling.TolPPM = s.TolPPM
		}
		tag += ";" + f.Coupling.Tag()
	}
	meta := telemetry.Meta{
		FleetSeed:   s.Seed,
		Wearers:     s.Wearers,
		SpanSeconds: s.DurSeconds,
		Scenario:    tag,
		BlockSize:   s.BlockSize,
		Version:     telemetry.CreateVersion(s.SeriesSeconds > 0),
		Cells:       s.Cells,
		Feedback:    s.Feedback && s.Cells > 0,

		SeriesCadenceSeconds: s.SeriesSeconds,
	}
	return f, meta
}
