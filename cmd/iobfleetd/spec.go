package main

import (
	"fmt"
	"math"

	"wiban/internal/fleet"
	"wiban/internal/spectrum"
	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// sweepSpec is one sweep submission: the iobfleet flag surface as JSON.
// Every field is literal — an omitted numeric field is zero, not a
// server-side default — so the sidecar-persisted spec alone re-derives
// the sweep bit-for-bit after a restart. Field names mirror the CLI
// flags (dur → dur_seconds, series → series_seconds, tol → tol_ppm).
type sweepSpec struct {
	Wearers    int     `json:"wearers"`
	Seed       int64   `json:"seed"`
	DurSeconds float64 `json:"dur_seconds"`
	Workers    int     `json:"workers,omitempty"`

	PERSpread     float64 `json:"per_spread,omitempty"`
	BatterySpread float64 `json:"batt_spread,omitempty"`
	HarvesterProb float64 `json:"harvest_prob,omitempty"`
	DropNodeProb  float64 `json:"drop_prob,omitempty"`
	BLEFraction   float64 `json:"ble_frac,omitempty"`
	Drain         bool    `json:"drain,omitempty"`

	Cells   int     `json:"cells,omitempty"`
	Density float64 `json:"density,omitempty"`

	Feedback bool  `json:"feedback,omitempty"`
	MaxIters int   `json:"max_iters,omitempty"`
	TolPPM   int64 `json:"tol_ppm,omitempty"`

	SeriesSeconds float64 `json:"series_seconds,omitempty"`
	BlockSize     int     `json:"block_size,omitempty"`

	// Shards, when positive, makes the receiving daemon a coordinator: it
	// splits [0, Wearers) into this many contiguous ranges, dispatches
	// each as a shard sub-sweep to a backend (-backends, or itself), and
	// merges the returned stores into one bit-identical to a 1-process
	// run. A coordinator spec carries none of the shard-side fields below.
	Shards int `json:"shards,omitempty"`

	// The remaining fields are the shard side of the protocol — set by a
	// coordinator on the sub-specs it dispatches, not by clients.
	// FirstWearer/EndWearer bound the shard's wearer range (end 0 =
	// Wearers); Label makes re-dispatch idempotent (a resubmitted label
	// returns the existing sweep instead of a duplicate); SeedStoreURL
	// points at the coordinator's partial copy of the shard store, so a
	// replacement backend resumes from the blocks already replicated
	// instead of re-simulating the shard from scratch; Presolved ships
	// the coordinator's merged phase-1 results (see fleet.Presolved).
	FirstWearer  int            `json:"first_wearer,omitempty"`
	EndWearer    int            `json:"end_wearer,omitempty"`
	Label        string         `json:"label,omitempty"`
	SeedStoreURL string         `json:"seed_store_url,omitempty"`
	Presolved    *presolvedSpec `json:"presolved,omitempty"`
}

// presolvedSpec is the wire form of fleet.Presolved: the coordinator's
// merged full-population load table plus, in feedback mode, the solved
// equilibrium windowed to the shard's wearer range.
type presolvedSpec struct {
	Loads []spectrum.CellLoad `json:"loads"`
	Eq    *eqSpec             `json:"eq,omitempty"`
}

// eqSpec is the exported spectrum.Result: the equilibrium per-cell table
// and iteration counts of the full solve plus the per-wearer own loads of
// the shard's range [first_wearer, end_wearer).
type eqSpec struct {
	Table []spectrum.CellLoad  `json:"table"`
	Iters []spectrum.CellIters `json:"iters,omitempty"`
	Own   []int64              `json:"own"`
}

// normalize validates the spec and resolves density into cells (the two
// are one knob, exactly as in the CLI), so the persisted spec is
// canonical: a restart re-derives the identical sweep without repeating
// the derivation.
func (s *sweepSpec) normalize() error {
	if s.Wearers <= 0 {
		return fmt.Errorf("non-positive population %d", s.Wearers)
	}
	if !(s.DurSeconds > 0) { // also catches NaN
		return fmt.Errorf("non-positive span %v", s.DurSeconds)
	}
	if s.Workers < 0 {
		return fmt.Errorf("negative worker count %d", s.Workers)
	}
	if s.Density != 0 {
		if !(s.Density > 0) {
			return fmt.Errorf("non-positive density %v", s.Density)
		}
		if s.Cells != 0 {
			return fmt.Errorf("cells and density are two spellings of the same knob; pass one")
		}
		s.Cells = cellsForDensity(s.Wearers, s.Density)
		s.Density = 0
	}
	if s.Cells < 0 {
		return fmt.Errorf("negative cell count %d", s.Cells)
	}
	if s.Feedback {
		if s.Cells <= 0 {
			return fmt.Errorf("feedback needs a spectrum topology; pass cells or density")
		}
		if s.MaxIters < 0 {
			return fmt.Errorf("negative feedback iteration cap %d", s.MaxIters)
		}
		if s.TolPPM < 0 {
			return fmt.Errorf("negative feedback tolerance %d", s.TolPPM)
		}
	} else if s.MaxIters != 0 || s.TolPPM != 0 {
		return fmt.Errorf("max_iters/tol_ppm are feedback knobs; set feedback too")
	}
	if s.SeriesSeconds < 0 || math.IsNaN(s.SeriesSeconds) {
		return fmt.Errorf("negative series cadence %v", s.SeriesSeconds)
	}
	if s.BlockSize < 0 {
		return fmt.Errorf("negative block size %d", s.BlockSize)
	}
	if s.Shards < 0 || s.Shards > s.Wearers {
		return fmt.Errorf("shard count %d outside [0, %d]", s.Shards, s.Wearers)
	}
	if s.Shards > 0 && (s.FirstWearer != 0 || s.EndWearer != 0 || s.Label != "" || s.SeedStoreURL != "" || s.Presolved != nil) {
		return fmt.Errorf("shards is a coordinator knob; first_wearer/end_wearer/label/seed_store_url/presolved describe one shard — a spec carries one side only")
	}
	if s.FirstWearer < 0 || s.EndWearer < 0 {
		return fmt.Errorf("negative wearer range [%d,%d)", s.FirstWearer, s.EndWearer)
	}
	if s.EndWearer == s.Wearers {
		s.EndWearer = 0 // canonical full-range spelling, like telemetry.Meta's
	}
	first, end := s.wearerRange()
	if first >= end || end > s.Wearers {
		return fmt.Errorf("wearer range [%d,%d) outside population %d", first, end, s.Wearers)
	}
	if s.Presolved != nil {
		if s.Cells <= 0 {
			return fmt.Errorf("presolved loads need a spectrum topology; pass cells or density")
		}
		if (s.Presolved.Eq != nil) != s.Feedback {
			return fmt.Errorf("presolved equilibrium present=%v but feedback=%v", s.Presolved.Eq != nil, s.Feedback)
		}
		if _, err := s.presolved(); err != nil {
			return err
		}
	}
	gen := s.generator()
	if err := gen.Validate(); err != nil {
		return err
	}
	return nil
}

// wearerRange is the spec's wearer interval [first, end); end 0 reads as
// the whole population, mirroring telemetry.Meta.Range.
func (s *sweepSpec) wearerRange() (int, int) {
	end := s.EndWearer
	if end == 0 {
		end = s.Wearers
	}
	return s.FirstWearer, end
}

// presolved reconstructs the fleet.Presolved the wire form describes (nil
// when the spec carries none). Called from normalize so a malformed table
// or equilibrium is a 400 at submit time, not a failed sweep later.
func (s *sweepSpec) presolved() (*fleet.Presolved, error) {
	if s.Presolved == nil {
		return nil, nil
	}
	loads, err := spectrum.ImportTable(s.Cells, s.Presolved.Loads)
	if err != nil {
		return nil, fmt.Errorf("presolved loads: %w", err)
	}
	p := &fleet.Presolved{Loads: loads}
	if e := s.Presolved.Eq; e != nil {
		first, end := s.wearerRange()
		if len(e.Own) != end-first {
			return nil, fmt.Errorf("presolved equilibrium covers %d wearers, shard range [%d,%d) holds %d",
				len(e.Own), first, end, end-first)
		}
		res, err := spectrum.NewResult(s.Cells, e.Table, e.Iters, first, e.Own)
		if err != nil {
			return nil, fmt.Errorf("presolved equilibrium: %w", err)
		}
		p.Eq = res
	}
	return p, nil
}

// cellsForDensity derives the cell count hitting a target wearers-per-
// cell: ceil(wearers/density), never below 1 — the same arithmetic as
// the iobfleet -density flag.
func cellsForDensity(wearers int, density float64) int {
	cells := int(math.Ceil(float64(wearers) / density))
	if cells < 1 {
		return 1
	}
	return cells
}

// generator builds the population generator the spec describes.
func (s *sweepSpec) generator() *fleet.Generator {
	return &fleet.Generator{
		Base:          fleet.DefaultBase(),
		PERSpread:     s.PERSpread,
		BatterySpread: s.BatterySpread,
		HarvesterProb: s.HarvesterProb,
		DropNodeProb:  s.DropNodeProb,
		BLEFraction:   s.BLEFraction,
		DrainBattery:  s.Drain,
	}
}

// build assembles the runnable fleet and the telemetry metadata of a
// normalized spec — exactly the composition cmd/iobfleet performs from
// its flags, with the engine's Stats hook attached for live metrics. A
// shard spec yields a range-bounded fleet (Start/End) with the shipped
// phase-1 results attached, and a meta whose FirstWearer/EndWearer mark
// the store as a shard store.
func (s *sweepSpec) build(stats *fleet.Stats) (*fleet.Fleet, telemetry.Meta, error) {
	gen := s.generator()
	first, end := s.wearerRange()
	f := &fleet.Fleet{
		Wearers:  s.Wearers,
		Seed:     s.Seed,
		Scenario: gen.Scenario(),
		Loads:    gen.LoadScenario(),
		Span:     units.Duration(s.DurSeconds),
		Workers:  s.Workers,
		Start:    first,
		Series:   units.Duration(s.SeriesSeconds),
		Stats:    stats,
	}
	if end != s.Wearers {
		f.End = end
	}
	tag := gen.Tag()
	if s.Cells > 0 {
		f.Coupling = &fleet.Coupling{Cells: s.Cells, Model: spectrum.Default()}
		if s.Feedback {
			f.Coupling.Feedback = true
			f.Coupling.MaxIters = s.MaxIters
			f.Coupling.TolPPM = s.TolPPM
		}
		p, err := s.presolved()
		if err != nil {
			return nil, telemetry.Meta{}, err
		}
		f.Coupling.Presolved = p
		tag += ";" + f.Coupling.Tag()
	}
	meta := telemetry.Meta{
		FleetSeed:   s.Seed,
		Wearers:     s.Wearers,
		SpanSeconds: s.DurSeconds,
		Scenario:    tag,
		BlockSize:   s.BlockSize,
		Version:     telemetry.CreateVersion(s.SeriesSeconds > 0),
		Cells:       s.Cells,
		Feedback:    s.Feedback && s.Cells > 0,

		SeriesCadenceSeconds: s.SeriesSeconds,

		FirstWearer: s.FirstWearer,
		EndWearer:   s.EndWearer,
	}
	return f, meta, nil
}
