package main

// The fleet membership layer. PR 8's shard dispatch selected backends
// from a static -backends list, so a dead backend had to be resurrected
// or hand-replaced at the same URL. Membership makes the fleet live:
// backends POST /api/backends to register (and re-POST on a heartbeat
// interval), the coordinator expires entries that fall silent past a
// TTL, and the table persists in -data so a restarted coordinator still
// knows its fleet before the first heartbeat arrives. Static -backends
// entries remain supported as permanent members that never expire.
//
// Expiry is a selection gate, not a kill switch: a shard already
// dispatched to a backend keeps streaming from it for as long as the
// backend answers, even after its membership entry expires — the
// supervisor's host list is sticky, and only NEW dispatch decisions
// consult the live set. That is what keeps a heartbeat hiccup from
// cancelling in-flight work.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"wiban/internal/obs"
)

// member is one row of the membership table. Static members come from
// the -backends flag and never expire; dynamic members arrive over
// POST /api/backends and live for the coordinator's -expire TTL past
// their last heartbeat. expired is in-memory bookkeeping so the flip is
// counted exactly once; the entry itself stays in the table (a later
// heartbeat revives it, and its presence records that a fleet was
// configured — which is what keeps selection from silently falling back
// to loopback self-dispatch when every backend is down).
type member struct {
	URL      string    `json:"url"`
	Static   bool      `json:"static,omitempty"`
	LastSeen time.Time `json:"last_seen,omitempty"`

	expired bool
}

// memberState is the API view of a member: the table row plus the
// derived liveness the dispatch path gates on.
type memberState struct {
	member
	Live bool `json:"live"`
}

// membership is the coordinator's backend table. All access is guarded
// by mu; liveness is evaluated lazily against now() on every read, so
// there is no sweeper goroutine to leak or race.
type membership struct {
	mu   sync.Mutex
	path string // persisted table ("" = memory only); never matches the s*.json sidecar glob
	ttl  time.Duration
	now  func() time.Time

	entries map[string]*member

	// Wired by registerMetrics after construction; nil until then, so
	// every bump goes through the inc helper.
	registrations *obs.Counter
	expirations   *obs.Counter
}

const defaultExpiry = 10 * time.Second

// newMembership builds the table with the static -backends entries and,
// when path names an existing file, the dynamic members a previous
// process persisted (their staleness is re-judged against the TTL on
// first read, so a long-dead backend does not resurrect as live).
func newMembership(path string, static []string) (*membership, error) {
	ms := &membership{
		path:    path,
		ttl:     defaultExpiry,
		now:     time.Now,
		entries: make(map[string]*member),
	}
	if err := ms.load(); err != nil {
		return nil, err
	}
	for _, b := range static {
		ms.entries[b] = &member{URL: b, Static: true}
	}
	return ms, nil
}

// load reads the persisted dynamic members. A missing file is a fresh
// start; a corrupt one is an error — membership is recovery state, and
// silently dropping it would strand a fleet that registered before the
// coordinator crashed.
func (ms *membership) load() error {
	if ms.path == "" {
		return nil
	}
	raw, err := os.ReadFile(ms.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var doc struct {
		Backends []*member `json:"backends"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("membership table %s: %w", ms.path, err)
	}
	for _, m := range doc.Backends {
		if m.URL == "" {
			return fmt.Errorf("membership table %s: entry with no url", ms.path)
		}
		m.Static = false
		ms.entries[m.URL] = m
	}
	return nil
}

// persistLocked writes the dynamic half of the table atomically (temp +
// rename), the same durability discipline as the sweep sidecars. Static
// entries are re-derived from the -backends flag each start, so they
// are deliberately not persisted. Caller holds mu.
func (ms *membership) persistLocked() error {
	if ms.path == "" {
		return nil
	}
	var doc struct {
		Backends []*member `json:"backends"`
	}
	for _, m := range ms.entries {
		if !m.Static {
			doc.Backends = append(doc.Backends, m)
		}
	}
	sort.Slice(doc.Backends, func(i, j int) bool { return doc.Backends[i].URL < doc.Backends[j].URL })
	raw, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	tmp := ms.path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, ms.path)
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// normalizeBackendURL validates and canonicalizes a registration URL:
// absolute http(s), a host, no trailing slash — the exact base-URL form
// dispatch concatenates endpoint paths onto.
func normalizeBackendURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("backend url %q: %w", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("backend url %q: want an absolute http(s) base URL", raw)
	}
	return raw, nil
}

// register upserts a dynamic member (or refreshes a static one). Every
// call stamps LastSeen — registration and heartbeat are the same verb —
// but only a new or revived entry counts as a registration.
func (ms *membership) register(raw string) (memberState, error) {
	u, err := normalizeBackendURL(raw)
	if err != nil {
		return memberState{}, err
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	now := ms.now()
	m, ok := ms.entries[u]
	if !ok {
		m = &member{URL: u}
		ms.entries[u] = m
		inc(ms.registrations)
	} else if ms.expireLocked(m, now) {
		m.expired = false
		inc(ms.registrations)
	}
	m.LastSeen = now
	if err := ms.persistLocked(); err != nil {
		return memberState{}, err
	}
	return memberState{member: *m, Live: true}, nil
}

// deregister removes a member — graceful goodbye from a draining
// backend, or an operator pulling a static entry out of rotation for
// the rest of this process's life.
func (ms *membership) deregister(raw string) bool {
	u, err := normalizeBackendURL(raw)
	if err != nil {
		return false
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if _, ok := ms.entries[u]; !ok {
		return false
	}
	delete(ms.entries, u)
	ms.persistLocked()
	return true
}

// expireLocked reports whether m is past its TTL, counting the flip to
// expired exactly once. Caller holds mu.
func (ms *membership) expireLocked(m *member, now time.Time) bool {
	if m.Static || now.Sub(m.LastSeen) <= ms.ttl {
		return false
	}
	if !m.expired {
		m.expired = true
		inc(ms.expirations)
	}
	return true
}

// live returns the selectable backend URLs — static members plus every
// dynamic member inside its TTL — in sorted order, so round-robin
// placement is deterministic for a given fleet. any reports whether the
// table holds entries at all (live or expired): a fleet that was
// configured but is momentarily all-dead should make dispatch wait for
// a heartbeat, not silently fall back to loopback.
func (ms *membership) live() (urls []string, any bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	now := ms.now()
	for _, m := range ms.entries {
		any = true
		if !ms.expireLocked(m, now) {
			urls = append(urls, m.URL)
		}
	}
	sort.Strings(urls)
	return urls, any
}

// list returns every table row with its derived liveness, sorted by
// URL — the GET /api/backends payload.
func (ms *membership) list() []memberState {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	now := ms.now()
	out := make([]memberState, 0, len(ms.entries))
	for _, m := range ms.entries {
		out = append(out, memberState{member: *m, Live: !ms.expireLocked(m, now)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// counts returns (total entries, live entries, static entries) for the
// membership gauges in one lock acquisition.
func (ms *membership) counts() (total, live, static int) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	now := ms.now()
	for _, m := range ms.entries {
		total++
		if m.Static {
			static++
		}
		if !ms.expireLocked(m, now) {
			live++
		}
	}
	return total, live, static
}

// heartbeat keeps this daemon registered with one coordinator: an
// immediate POST /api/backends, then one per interval, until stop
// closes — at which point it deregisters best-effort so the
// coordinator stops selecting a backend that is about to drain (the
// /healthz gate would catch it anyway; this just makes goodbye
// explicit). Registration failures are retried on the next tick: a
// coordinator restart loses nothing but one beat.
func heartbeat(client *http.Client, coordinator, self string, interval time.Duration, stop <-chan struct{}) {
	body, _ := json.Marshal(map[string]string{"url": self})
	post := func() {
		resp, err := client.Post(coordinator+"/api/backends", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return
		}
		resp.Body.Close()
	}
	post()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			req, err := http.NewRequest(http.MethodDelete,
				coordinator+"/api/backends?url="+url.QueryEscape(self), nil)
			if err == nil {
				if resp, err := client.Do(req); err == nil {
					resp.Body.Close()
				}
			}
			return
		case <-tick.C:
			post()
		}
	}
}
