package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wiban/internal/obs"
)

// deleteSweep issues DELETE /api/sweeps/{id} against a test server and
// returns the HTTP status code.
func deleteSweep(t *testing.T, base, id string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/api/sweeps/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestCancelQueued pins the queued→cancelled transition: the sweep
// leaves the pending list and the queued gauge on the spot, the sidecar
// records the terminal state, a second DELETE is idempotent, and an
// unknown ID is a 404. No runners are started, so the sweep cannot
// escape the queue mid-test.
func TestCancelQueued(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	m, err := newManager(dir, 1, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(m, reg))
	defer srv.Close()

	st, err := m.submit(minimalSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if code := deleteSweep(t, srv.URL, st.ID); code != http.StatusOK {
		t.Fatalf("DELETE queued sweep: code %d, want 200", code)
	}
	got, _ := m.get(st.ID)
	if s := got.snapshot(); s.Status != statusCancelled || !s.CancelRequested {
		t.Errorf("state after cancel: %+v, want cancelled with the request recorded", s)
	}
	text := scrape(t, reg)
	if q := metricValue(t, text, "iobfleetd_sweeps_queued"); q != 0 {
		t.Errorf("queued gauge %v after cancelling the only queued sweep, want 0", q)
	}
	if c := metricValue(t, text, "iobfleetd_sweeps_cancelled_total"); c != 1 {
		t.Errorf("cancelled_total %v, want 1", c)
	}
	m.mu.Lock()
	pending := len(m.pending)
	m.mu.Unlock()
	if pending != 0 {
		t.Errorf("pending list holds %d sweeps after cancel, want 0", pending)
	}

	// Idempotent re-DELETE; 404 for an ID that never existed.
	if code := deleteSweep(t, srv.URL, st.ID); code != http.StatusOK {
		t.Errorf("second DELETE: code %d, want 200 (idempotent)", code)
	}
	if c := metricValue(t, scrape(t, reg), "iobfleetd_sweeps_cancelled_total"); c != 1 {
		t.Errorf("cancelled_total %v after idempotent re-DELETE, want still 1", c)
	}
	if code := deleteSweep(t, srv.URL, "s999999"); code != http.StatusNotFound {
		t.Errorf("DELETE unknown sweep: code %d, want 404", code)
	}

	// A restart must not resurrect it: the sidecar is terminal.
	m2, err := newManager(dir, 1, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sw2, ok := m2.get(st.ID)
	if !ok || sw2.snapshot().Status != statusCancelled {
		t.Errorf("recovered state %+v, want the cancellation to survive restart", sw2.snapshot())
	}
	m2.mu.Lock()
	if m2.queued != 0 || len(m2.pending) != 0 {
		t.Errorf("restart re-queued a cancelled sweep (queued=%d pending=%d)", m2.queued, len(m2.pending))
	}
	m2.mu.Unlock()
}

// TestCancelRunning drives a live runner: DELETE on a running sweep
// trips the latch, the engine checkpoints-and-parks at the next record
// boundary, gauges settle to zero, and the checkpointed store survives
// for retention to collect later.
func TestCancelRunning(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	m, err := newManager(dir, 1, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(m, reg))
	defer srv.Close()
	m.start(srv.URL)
	defer m.beginDrain()

	st, err := m.submit(sweepSpec{Wearers: 200000, Seed: 9, DurSeconds: 30, Workers: 2, BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	sw, _ := m.get(st.ID)
	deadline := time.Now().Add(30 * time.Second)
	for sw.snapshot().Status != statusRunning || sw.snapshot().Records == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sweep never reached running with progress: %+v", sw.snapshot())
		}
		time.Sleep(10 * time.Millisecond)
	}

	if code := deleteSweep(t, srv.URL, st.ID); code != http.StatusOK {
		t.Fatalf("DELETE running sweep: code %d, want 200", code)
	}
	for sw.snapshot().Status != statusCancelled {
		if time.Now().After(deadline) {
			t.Fatalf("runner never parked the sweep cancelled: %+v", sw.snapshot())
		}
		time.Sleep(10 * time.Millisecond)
	}

	text := scrape(t, reg)
	if r := metricValue(t, text, "iobfleetd_sweeps_running"); r != 0 {
		t.Errorf("running gauge %v after cancellation, want 0", r)
	}
	if q := metricValue(t, text, "iobfleetd_sweeps_queued"); q != 0 {
		t.Errorf("queued gauge %v after cancellation, want 0", q)
	}
	if c := metricValue(t, text, "iobfleetd_sweeps_cancelled_total"); c != 1 {
		t.Errorf("cancelled_total %v, want 1", c)
	}
	if i := metricValue(t, text, "iobfleetd_sweeps_interrupted_total"); i != 0 {
		t.Errorf("interrupted_total %v after a cancel, want 0 — cancellation is not a drain", i)
	}
	if _, err := os.Stat(filepath.Join(dir, st.ID+".wtl")); err != nil {
		t.Errorf("cancelled sweep's checkpointed store missing: %v", err)
	}
}

// TestCancelRecovery covers the two recovery edges: a sidecar caught
// between the DELETE and the runner's acknowledgement (running +
// cancel_requested) finalizes as cancelled instead of re-queueing, and
// DELETE on an already-done sweep is a 409.
func TestCancelRecovery(t *testing.T) {
	dir := t.TempDir()
	write := func(st sweepState) {
		raw, err := json.MarshalIndent(&st, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, st.ID+".json"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(sweepState{ID: "s000000", Spec: minimalSpec(1), Status: statusRunning, CancelRequested: true})
	write(sweepState{ID: "s000001", Spec: minimalSpec(2), Status: statusDone, Fingerprint: "feed"})

	reg := obs.NewRegistry()
	m, err := newManager(dir, 1, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sw, ok := m.get("s000000")
	if !ok || sw.snapshot().Status != statusCancelled {
		t.Fatalf("interrupted cancellation recovered as %+v, want finalized cancelled", sw.snapshot())
	}
	text := scrape(t, reg)
	if q := metricValue(t, text, "iobfleetd_sweeps_queued"); q != 0 {
		t.Errorf("queued gauge %v, want 0 — a cancel-requested sweep must not re-queue", q)
	}
	if c := metricValue(t, text, "iobfleetd_sweeps_cancelled_total"); c != 1 {
		t.Errorf("cancelled_total %v, want 1 (the recovery finalization)", c)
	}

	srv := httptest.NewServer(newMux(m, reg))
	defer srv.Close()
	if code := deleteSweep(t, srv.URL, "s000001"); code != http.StatusConflict {
		t.Errorf("DELETE done sweep: code %d, want 409", code)
	}
	if _, err := m.cancel("s000001"); !errors.Is(err, errTerminal) {
		t.Errorf("cancel(done) = %v, want errTerminal", err)
	}
}

// TestCancelLabelRevival pins the steal protocol's revival path: a
// cancelled sweep resubmitted under its label re-queues (fresh latch,
// cancel flags cleared) instead of answering with the terminal state.
func TestCancelLabelRevival(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	m, err := newManager(dir, 1, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := minimalSpec(1)
	spec.Label = "parent/shard0"
	st, err := m.submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.cancel(st.ID); err != nil {
		t.Fatal(err)
	}

	revived, err := m.submit(spec)
	if err != nil {
		t.Fatalf("revival submit: %v", err)
	}
	if revived.ID != st.ID {
		t.Errorf("revival minted a new sweep %s, want the labelled one %s back", revived.ID, st.ID)
	}
	if revived.Status != statusQueued || revived.CancelRequested {
		t.Errorf("revived state %+v, want queued with the cancel flags cleared", revived)
	}
	sw, _ := m.get(st.ID)
	select {
	case <-sw.cancelChan():
		t.Error("revived sweep's cancel latch is already tripped — the channel was not swapped")
	default:
	}
	text := scrape(t, reg)
	if q := metricValue(t, text, "iobfleetd_sweeps_queued"); q != 1 {
		t.Errorf("queued gauge %v after revival, want 1", q)
	}
}

// TestBackoffDelay pins the retry pacing: exponential from 50ms to a
// 500ms ceiling, jittered uniformly over [cap/2, cap) — never zero, and
// never the full cap in lockstep.
func TestBackoffDelay(t *testing.T) {
	for attempt := 0; attempt <= 10; attempt++ {
		base := 50 * time.Millisecond << attempt
		if base > 500*time.Millisecond {
			base = 500 * time.Millisecond
		}
		for i := 0; i < 200; i++ {
			if d := backoffDelay(attempt); d < base/2 || d >= base {
				t.Fatalf("attempt %d draw %d: %v outside [%v, %v)", attempt, i, d, base/2, base)
			}
		}
	}
}

// TestPermanentClassification pins which backend errors abandon a shard
// (a 400 is a deterministic spec rejection — the same spec would be
// rejected everywhere) and which rotate to another backend.
func TestPermanentClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"bad request", &httpStatusError{code: 400, msg: "bad spec"}, true},
		{"wrapped bad request", fmt.Errorf("shard 0: %w", &httpStatusError{code: 400}), true},
		{"not found", &httpStatusError{code: 404}, false},
		{"server error", &httpStatusError{code: 500}, false},
		{"draining", &httpStatusError{code: 503, msg: "draining"}, false},
		{"transport", errors.New("connection refused"), false},
	}
	for _, tc := range cases {
		if got := permanent(tc.err); got != tc.want {
			t.Errorf("permanent(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}
