package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestMain lets tests re-exec this binary as the real iobfleetd daemon,
// pinning actual process behavior — exit codes, signal handling, what a
// SIGKILL leaves on disk — rather than in-process approximations.
func TestMain(m *testing.M) {
	if os.Getenv("IOBFLEETD_RUN_MAIN") == "1" {
		main()
		os.Exit(0) // drained cleanly
	}
	os.Exit(m.Run())
}

// syncBuffer collects daemon output from concurrent pipe readers.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// daemon is one live re-exec'd iobfleetd process under test.
type daemon struct {
	t    *testing.T
	cmd  *exec.Cmd
	base string // http://127.0.0.1:<port>
	out  *syncBuffer
}

// startDaemon launches the daemon on a free port against dir and waits
// for its listen line so callers know the base URL.
func startDaemon(t *testing.T, dir string, args ...string) *daemon {
	t.Helper()
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0", "-data", dir}, args...)...)
	cmd.Env = append(os.Environ(), "IOBFLEETD_RUN_MAIN=1")
	out := &syncBuffer{}
	cmd.Stderr = out
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{t: t, cmd: cmd, out: out}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
		t.Logf("daemon output:\n%s", d.out.String())
	})
	// The first stdout line carries the resolved address; everything
	// after it streams into the shared buffer for post-mortem logs.
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(out, line)
		if i := strings.Index(line, "listening on http://"); i >= 0 {
			addr := strings.Fields(line[i+len("listening on "):])[0]
			d.base = addr
			go func() {
				for sc.Scan() {
					fmt.Fprintln(out, sc.Text())
				}
			}()
			return d
		}
	}
	cmd.Wait()
	t.Fatalf("daemon exited before listening:\n%s", out.String())
	return nil
}

// wait blocks for process exit and returns the exit code (-1 on signal
// death, matching os/exec).
func (d *daemon) wait() int {
	d.t.Helper()
	err := d.cmd.Wait()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		d.t.Fatal(err)
	}
	return ee.ExitCode()
}

// getJSON GETs base+path and decodes the JSON response into v,
// returning the status code.
func (d *daemon) getJSON(path string, v any) int {
	d.t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		d.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			d.t.Fatalf("GET %s: decoding: %v", path, err)
		}
	}
	return resp.StatusCode
}

// submit POSTs a sweep spec and returns the accepted state.
func (d *daemon) submit(spec string) sweepState {
	d.t.Helper()
	resp, err := http.Post(d.base+"/api/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		d.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		d.t.Fatalf("submit %s: %d %s", spec, resp.StatusCode, body)
	}
	var st sweepState
	if err := json.Unmarshal(body, &st); err != nil {
		d.t.Fatal(err)
	}
	return st
}

// awaitStatus polls one sweep until it reaches status (or the deadline).
func (d *daemon) awaitStatus(id, status string, timeout time.Duration) sweepState {
	d.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st sweepState
		if code := d.getJSON("/api/sweeps/"+id, &st); code != http.StatusOK {
			d.t.Fatalf("sweep %s: status %d", id, code)
		}
		if st.Status == status {
			return st
		}
		if st.terminal() && status != st.Status {
			d.t.Fatalf("sweep %s reached %q (error %q) while waiting for %q", id, st.Status, st.Error, status)
		}
		if time.Now().After(deadline) {
			d.t.Fatalf("sweep %s stuck at %q waiting for %q", id, st.Status, status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// metrics scrapes /metrics and returns the raw exposition text.
func (d *daemon) metrics() string {
	d.t.Helper()
	resp, err := http.Get(d.base + "/metrics")
	if err != nil {
		d.t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		d.t.Errorf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		d.t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one sample (by exact series name, labels
// included) from exposition text.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: %v", series, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not in exposition:\n%s", series, text)
	return 0
}

// TestDaemonSmoke is the end-to-end pass over the whole HTTP surface:
// health, submission validation, a sweep run to completion, the NDJSON
// progress stream, a /metrics scrape checked for counter values,
// monotonicity and histogram self-consistency, and pprof.
func TestDaemonSmoke(t *testing.T) {
	d := startDaemon(t, t.TempDir())

	if code := d.getJSON("/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code := d.getJSON("/api/sweeps/s999999", nil); code != http.StatusNotFound {
		t.Errorf("missing sweep: %d, want 404", code)
	}

	// Malformed specs bounce with 400 before touching the queue.
	for _, bad := range []string{
		`{"wearers":0,"dur_seconds":5}`,
		`{"wearers":50,"dur_seconds":5,"max_iters":3}`,
		`{"wearers":50,"dur_seconds":5,"unknown_knob":1}`,
		`{"wearers":50,"dur_seconds":5,"cells":4,"density":10}`,
	} {
		resp, err := http.Post(d.base+"/api/sweeps", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %s: %d, want 400", bad, resp.StatusCode)
		}
	}

	// A real sweep: coupled with feedback so the phase-1 and equilibrium
	// counters move too, with a small block size so progress ticks.
	const wearers = 60
	st := d.submit(`{"wearers":60,"seed":7,"dur_seconds":5,"cells":4,"feedback":true,"ble_frac":0.5,"block_size":8}`)
	if st.Status != statusQueued || st.ID == "" {
		t.Fatalf("submit returned %+v", st)
	}

	// The progress stream must deliver a final "done" line whose counts
	// match the store.
	resp, err := http.Get(d.base + "/api/sweeps/" + st.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("progress content type %q", ct)
	}
	var last progressEvent
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("progress line %q: %v", sc.Text(), err)
		}
		lines++
		if last.Final {
			break
		}
	}
	if !last.Final || last.Status != statusDone {
		t.Fatalf("progress stream ended at %+v after %d lines", last, lines)
	}
	if last.Records != wearers || last.WearersTotal != wearers {
		t.Errorf("final progress records %d/%d, want %d", last.Records, last.WearersTotal, wearers)
	}
	if last.Fingerprint == "" || last.Blocks == 0 || last.Bytes == 0 {
		t.Errorf("final progress missing store facts: %+v", last)
	}

	done := d.awaitStatus(st.ID, statusDone, 30*time.Second)
	if done.Fingerprint != last.Fingerprint {
		t.Errorf("GET fingerprint %q != progress fingerprint %q", done.Fingerprint, last.Fingerprint)
	}

	// Scrape 1: absolute values after exactly one completed sweep.
	m1 := d.metrics()
	for series, want := range map[string]float64{
		"iobfleetd_sweeps_submitted_total":       1,
		"iobfleetd_sweeps_started_total":         1,
		"iobfleetd_sweeps_completed_total":       1,
		"iobfleetd_sweeps_failed_total":          0,
		"iobfleetd_sweeps_running":               0,
		"iobfleetd_sweeps_queued":                0,
		"iobfleetd_wearers_simulated_total":      wearers,
		"iobfleetd_equilibrium_cells_total":      4,
		"iobfleetd_sweep_duration_seconds_count": 1,
	} {
		if got := metricValue(t, m1, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	for _, positive := range []string{
		"iobfleetd_kernel_events_total",
		"iobfleetd_phase1_gather_seconds_total",
		"iobfleetd_phase1_solve_seconds_total",
		"iobfleetd_equilibrium_iterations_total",
		"iobfleetd_telemetry_blocks_written_total",
		"iobfleetd_telemetry_bytes_written_total",
		"iobfleetd_goroutines",
		"iobfleetd_heap_alloc_bytes",
	} {
		if got := metricValue(t, m1, positive); !(got > 0) {
			t.Errorf("%s = %v, want > 0", positive, got)
		}
	}
	// Histogram self-consistency: cumulative buckets are nondecreasing
	// and the +Inf bucket equals _count.
	prev, inf := -1.0, 0.0
	for _, line := range strings.Split(m1, "\n") {
		if !strings.HasPrefix(line, "iobfleetd_sweep_duration_seconds_bucket{") {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Errorf("bucket counts regressed: %s", line)
		}
		prev, inf = v, v
	}
	if count := metricValue(t, m1, "iobfleetd_sweep_duration_seconds_count"); inf != count {
		t.Errorf("+Inf bucket %v != _count %v", inf, count)
	}

	// Scrape 2 after a second sweep: counters are monotone and exact.
	st2 := d.submit(`{"wearers":60,"seed":7,"dur_seconds":5,"cells":4,"feedback":true,"ble_frac":0.5,"block_size":8}`)
	done2 := d.awaitStatus(st2.ID, statusDone, 30*time.Second)
	if done2.Fingerprint != done.Fingerprint {
		t.Errorf("identical specs fingerprinted %q vs %q", done2.Fingerprint, done.Fingerprint)
	}
	m2 := d.metrics()
	for _, series := range []string{
		"iobfleetd_sweeps_completed_total",
		"iobfleetd_wearers_simulated_total",
		"iobfleetd_kernel_events_total",
		"iobfleetd_telemetry_bytes_written_total",
	} {
		v1, v2 := metricValue(t, m1, series), metricValue(t, m2, series)
		if v2 <= v1 {
			t.Errorf("%s not monotone across sweeps: %v → %v", series, v1, v2)
		}
	}
	if got := metricValue(t, m2, "iobfleetd_wearers_simulated_total"); got != 2*wearers {
		t.Errorf("wearers after two sweeps %v, want %v", got, 2*wearers)
	}

	// The sweep list carries both, in submission order.
	var all []sweepState
	d.getJSON("/api/sweeps", &all)
	if len(all) != 2 || all[0].ID != st.ID || all[1].ID != st2.ID {
		t.Errorf("sweep list %+v", all)
	}

	// pprof rides the same mux.
	if code := d.getJSON("/debug/pprof/cmdline", nil); code != http.StatusOK {
		t.Errorf("pprof: %d", code)
	}

	// SIGTERM with nothing running: clean exit 0.
	d.cmd.Process.Signal(syscall.SIGTERM)
	if code := d.wait(); code != 0 {
		t.Fatalf("idle daemon exited %d on SIGTERM, want 0", code)
	}
}

// TestDaemonDrainAndResume pins the graceful half of the chaos story: a
// SIGTERM mid-sweep checkpoints, parks the sweep as "interrupted",
// exits 0 — and a restart on the same data directory resumes it to the
// bit-identical fingerprint of an uninterrupted run.
func TestDaemonDrainAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second daemon lifecycle in -short mode")
	}
	dir := t.TempDir()
	d := startDaemon(t, dir)

	// Big enough to still be mid-run at the signal; workers pinned so the
	// duration is stable across machines.
	spec := `{"wearers":6000,"seed":11,"dur_seconds":30,"workers":2,"ble_frac":0.5,"block_size":64}`
	st := d.submit(spec)

	// Wait for durable progress so the resume has a checkpoint to use.
	deadline := time.Now().Add(60 * time.Second)
	for {
		var cur sweepState
		d.getJSON("/api/sweeps/"+st.ID, &cur)
		if cur.Blocks >= 1 && cur.Status == statusRunning {
			break
		}
		if cur.terminal() {
			t.Fatalf("sweep finished before the drain could interrupt it: %+v (grow the spec)", cur)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no committed block after 60s: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}

	d.cmd.Process.Signal(syscall.SIGTERM)
	if code := d.wait(); code != 0 {
		t.Fatalf("draining daemon exited %d, want 0", code)
	}

	// The sidecar on disk says interrupted, with a partial record count.
	raw, err := os.ReadFile(dir + "/" + st.ID + ".json")
	if err != nil {
		t.Fatal(err)
	}
	var parked sweepState
	if err := json.Unmarshal(raw, &parked); err != nil {
		t.Fatal(err)
	}
	if parked.Status != statusInterrupted {
		t.Fatalf("parked status %q, want interrupted:\n%s", parked.Status, raw)
	}
	if parked.Records <= 0 || parked.Records >= 6000 {
		t.Errorf("parked records %d, want a proper prefix of 6000", parked.Records)
	}

	// Restart: the sweep re-queues, resumes from the checkpoint and
	// finishes with the uninterrupted fingerprint.
	d2 := startDaemon(t, dir)
	done := d2.awaitStatus(st.ID, statusDone, 120*time.Second)
	if done.Records != 6000 {
		t.Errorf("resumed sweep records %d, want 6000", done.Records)
	}
	var js sweepSpec
	if err := json.Unmarshal([]byte(spec), &js); err != nil {
		t.Fatal(err)
	}
	if err := js.normalize(); err != nil {
		t.Fatal(err)
	}
	f, _, err := js.build(nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if done.Fingerprint != rep.Fingerprint() {
		t.Errorf("resumed fingerprint %q != uninterrupted %q", done.Fingerprint, rep.Fingerprint())
	}
	if got := metricValue(t, d2.metrics(), "iobfleetd_sweeps_resumed_total"); got != 1 {
		t.Errorf("resumed_total %v, want 1", got)
	}
	d2.cmd.Process.Signal(syscall.SIGTERM)
	if code := d2.wait(); code != 0 {
		t.Fatalf("second daemon exited %d, want 0", code)
	}
}
