package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"wiban/internal/fleet"
	"wiban/internal/telemetry"
)

// freePort reserves an address a daemon can be restarted on: unlike
// -listen :0, a killed backend's replacement must come back at the URL
// the coordinator's -backends list already names.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// storeBytes reads a sweep's telemetry store off a daemon's data dir.
func storeBytes(t *testing.T, dir, id string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, id+".wtl"))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// groundTruthStore runs spec uninterrupted in this process, streaming
// its records into a single-writer telemetry store, and returns the
// store's bytes plus the run's fingerprint — the exact artifacts a
// sharded (or chaos-ridden) daemon run must reproduce bit for bit.
func groundTruthStore(t *testing.T, spec sweepSpec) ([]byte, string) {
	t.Helper()
	f, meta, err := spec.build(nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "truth.wtl")
	w, err := telemetry.Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	agg := fleet.NewStreamAggregator(f.Span)
	if _, err := f.Stream(fleet.Tee(w, agg)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw, agg.Report().Fingerprint()
}

// sameQueryStats compares two stores' QueryStore aggregates — the same
// numbers iobtrace query prints — over a few representative queries.
func sameQueryStats(t *testing.T, mergedPath, singlePath string) {
	t.Helper()
	for _, q := range []telemetry.Query{
		{Metric: "charge", Cell: -1, Node: -1},
		{Metric: "queue", FromMS: 2000, Cell: 2, Node: -1},
		{Metric: "per", Cell: -1, Node: 0},
	} {
		m, err := telemetry.QueryStore(mergedPath, q)
		if err != nil {
			t.Fatalf("query merged store: %v", err)
		}
		s, err := telemetry.QueryStore(singlePath, q)
		if err != nil {
			t.Fatalf("query single store: %v", err)
		}
		if m.Points != s.Points || m.Gaps != s.Gaps || m.Sum != s.Sum ||
			m.Min != s.Min || m.Max != s.Max || m.Percentile(100) != s.Percentile(100) {
			t.Errorf("query %+v diverged: merged {pts=%d gaps=%d sum=%v} vs single {pts=%d gaps=%d sum=%v}",
				q, m.Points, m.Gaps, m.Sum, s.Points, s.Gaps, s.Sum)
		}
	}
}

// TestShardedFingerprint is the acceptance gate for shard dispatch: a
// sweep split 3 ways across two remote backends must merge into a store
// bit-identical — fingerprint AND bytes — to the same spec run
// unsharded in one process, in both first-order and feedback coupling.
// A loopback run (no -backends) covers the self-dispatch path.
func TestShardedFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon lifecycle in -short mode")
	}
	b0 := startDaemon(t, t.TempDir())
	b1 := startDaemon(t, t.TempDir())
	coDir := t.TempDir()
	co := startDaemon(t, coDir, "-backends", b0.base+","+b1.base)

	cases := []struct {
		name    string
		sharded string // shards:3 coordinator spec
		single  string // identical spec, no shards
	}{
		{
			"first-order",
			`{"wearers":120,"seed":11,"dur_seconds":10,"workers":2,"ble_frac":0.5,"cells":8,"block_size":16,"shards":3}`,
			`{"wearers":120,"seed":11,"dur_seconds":10,"workers":2,"ble_frac":0.5,"cells":8,"block_size":16}`,
		},
		{
			"feedback",
			`{"wearers":120,"seed":12,"dur_seconds":10,"workers":2,"ble_frac":0.5,"cells":8,"feedback":true,"max_iters":64,"tol_ppm":200,"block_size":16,"shards":3}`,
			`{"wearers":120,"seed":12,"dur_seconds":10,"workers":2,"ble_frac":0.5,"cells":8,"feedback":true,"max_iters":64,"tol_ppm":200,"block_size":16}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sharded := co.submit(tc.sharded)
			done := co.awaitStatus(sharded.ID, statusDone, 120*time.Second)

			// Ground truth 1: an uninterrupted in-process run.
			var spec sweepSpec
			mustUnmarshalSpec(t, tc.sharded, &spec)
			f, _, err := spec.build(nil)
			if err != nil {
				t.Fatal(err)
			}
			rep, _, err := f.Run()
			if err != nil {
				t.Fatal(err)
			}
			if done.Fingerprint != rep.Fingerprint() {
				t.Errorf("sharded fingerprint %q != in-process %q", done.Fingerprint, rep.Fingerprint())
			}
			if done.Records != spec.Wearers {
				t.Errorf("sharded records %d, want %d", done.Records, spec.Wearers)
			}

			// Ground truth 2: the same spec unsharded through the daemon —
			// the merged store must be byte-identical, trailing index and all.
			single := co.submit(tc.single)
			singleDone := co.awaitStatus(single.ID, statusDone, 120*time.Second)
			if singleDone.Fingerprint != done.Fingerprint {
				t.Errorf("unsharded daemon fingerprint %q != sharded %q", singleDone.Fingerprint, done.Fingerprint)
			}
			if !bytes.Equal(storeBytes(t, coDir, sharded.ID), storeBytes(t, coDir, single.ID)) {
				t.Error("merged shard store differs byte-for-byte from the single-process store")
			}

			// Shard partials must not outlive the merge.
			leftovers, _ := filepath.Glob(filepath.Join(coDir, sharded.ID+".shard*"))
			if len(leftovers) != 0 {
				t.Errorf("shard partials left after merge: %v", leftovers)
			}
		})
	}

	// Each case dispatched 3 shards across the two backends.
	if got := metricValue(t, co.metrics(), "iobfleetd_shards_dispatched_total"); got < 6 {
		t.Errorf("shards_dispatched_total %v, want >= 6", got)
	}
	if got := metricValue(t, co.metrics(), "iobfleetd_shard_fetch_bytes_total"); got <= 0 {
		t.Errorf("shard_fetch_bytes_total %v, want > 0", got)
	}
}

// TestShardedSeriesFingerprint is the acceptance gate for sharded
// series sweeps: a -series sweep split 3 ways across two backends must
// merge into a store byte-identical — fingerprint, samples, trailing
// index and all — to an uninterrupted single-writer run AND to the same
// spec run unsharded through a single backend, in both coupling modes,
// with QueryStore (the aggregation path iobtrace query drives) reading
// identical numbers off the merged and single-backend stores.
func TestShardedSeriesFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon lifecycle in -short mode")
	}
	b0dir := t.TempDir()
	b0 := startDaemon(t, b0dir)
	b1 := startDaemon(t, t.TempDir())
	coDir := t.TempDir()
	co := startDaemon(t, coDir, "-backends", b0.base+","+b1.base)

	cases := []struct {
		name    string
		sharded string // shards:3 coordinator spec with series sampling on
		single  string // identical spec, no shards
	}{
		{
			"first-order",
			`{"wearers":120,"seed":14,"dur_seconds":10,"workers":2,"ble_frac":0.5,"cells":8,"series_seconds":2,"block_size":16,"shards":3}`,
			`{"wearers":120,"seed":14,"dur_seconds":10,"workers":2,"ble_frac":0.5,"cells":8,"series_seconds":2,"block_size":16}`,
		},
		{
			"feedback",
			`{"wearers":120,"seed":15,"dur_seconds":10,"workers":2,"ble_frac":0.5,"cells":8,"feedback":true,"max_iters":64,"tol_ppm":200,"series_seconds":2,"block_size":16,"shards":3}`,
			`{"wearers":120,"seed":15,"dur_seconds":10,"workers":2,"ble_frac":0.5,"cells":8,"feedback":true,"max_iters":64,"tol_ppm":200,"series_seconds":2,"block_size":16}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sharded := co.submit(tc.sharded)
			done := co.awaitStatus(sharded.ID, statusDone, 120*time.Second)

			// Ground truth 1: an uninterrupted in-process single-writer store.
			var spec sweepSpec
			mustUnmarshalSpec(t, tc.sharded, &spec)
			truth, fp := groundTruthStore(t, spec)
			if done.Fingerprint != fp {
				t.Errorf("sharded series fingerprint %q != in-process %q", done.Fingerprint, fp)
			}
			if done.Records != spec.Wearers {
				t.Errorf("sharded records %d, want %d", done.Records, spec.Wearers)
			}
			merged := storeBytes(t, coDir, sharded.ID)
			if !bytes.Equal(merged, truth) {
				t.Errorf("merged series store differs byte-for-byte from the single-writer store (%d vs %d bytes)",
					len(merged), len(truth))
			}

			// Ground truth 2: the same spec unsharded on one backend — the
			// stores must match byte-for-byte and query identically.
			single := b0.submit(tc.single)
			singleDone := b0.awaitStatus(single.ID, statusDone, 120*time.Second)
			if singleDone.Fingerprint != done.Fingerprint {
				t.Errorf("unsharded daemon fingerprint %q != sharded %q", singleDone.Fingerprint, done.Fingerprint)
			}
			if !bytes.Equal(merged, storeBytes(t, b0dir, single.ID)) {
				t.Error("merged shard store differs byte-for-byte from the single-backend store")
			}
			sameQueryStats(t, filepath.Join(coDir, sharded.ID+".wtl"), filepath.Join(b0dir, single.ID+".wtl"))

			// Shard partials must not outlive the merge.
			leftovers, _ := filepath.Glob(filepath.Join(coDir, sharded.ID+".shard*"))
			if len(leftovers) != 0 {
				t.Errorf("shard partials left after merge: %v", leftovers)
			}
		})
	}
}

// TestShardedLoopback covers self-dispatch: with no -backends the
// coordinator ships its shards to itself, which needs spare runner
// slots (the coordinator occupies one while its shards run).
func TestShardedLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon lifecycle in -short mode")
	}
	d := startDaemon(t, t.TempDir(), "-sweeps", "3")
	raw := `{"wearers":90,"seed":13,"dur_seconds":10,"workers":2,"ble_frac":1,"cells":6,"block_size":16,"shards":2}`
	done := d.awaitStatus(d.submit(raw).ID, statusDone, 120*time.Second)

	var spec sweepSpec
	mustUnmarshalSpec(t, raw, &spec)
	f, _, err := spec.build(nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if done.Fingerprint != rep.Fingerprint() {
		t.Errorf("loopback sharded fingerprint %q != in-process %q", done.Fingerprint, rep.Fingerprint())
	}
	if done.Records != spec.Wearers {
		t.Errorf("records %d, want %d", done.Records, spec.Wearers)
	}
}

// TestShardedChaosKillResume is the fault-model acceptance gate: one
// shard backend SIGKILLed mid-sweep (no drain, no warning) and brought
// back on the same address and data directory. The coordinator must
// ride it out — re-dispatching the lost shards to the survivor (which
// seed-pulls the partial replica) or to the restarted backend (which
// resumes its recovered sweep by label) — and still merge a store
// byte-identical, fingerprint included, to an uninterrupted
// single-process run. Both coupling modes, because they exercise
// different dispatch rounds; plus a series sweep, because a kill can
// tear a replicated record+series pair mid-frame and the recovery scan
// must discard the torn pair on both sides of the replication.
func TestShardedChaosKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second kill/restart lifecycle in -short mode")
	}
	cases := []struct {
		name string
		spec string
	}{
		{"first-order", `{"wearers":6000,"seed":21,"dur_seconds":30,"workers":2,"ble_frac":0.5,"cells":16,"block_size":64,"shards":3}`},
		{"feedback", `{"wearers":6000,"seed":22,"dur_seconds":30,"workers":2,"ble_frac":0.5,"cells":16,"feedback":true,"max_iters":64,"tol_ppm":200,"block_size":64,"shards":3}`},
		{"series", `{"wearers":6000,"seed":23,"dur_seconds":30,"workers":2,"ble_frac":0.5,"cells":16,"series_seconds":10,"block_size":64,"shards":3}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b0dir, b0addr := t.TempDir(), freePort(t)
			b0 := startDaemon(t, b0dir, "-listen", b0addr)
			b1 := startDaemon(t, t.TempDir())
			coDir := t.TempDir()
			co := startDaemon(t, coDir, "-backends", b0.base+","+b1.base)

			id := co.submit(tc.spec).ID

			// Kill once the sweep is mid-flight with real replicated
			// progress: running, and at least one shard block fetched back.
			deadline := time.Now().Add(90 * time.Second)
			for {
				var st sweepState
				co.getJSON("/api/sweeps/"+id, &st)
				if st.terminal() {
					t.Fatalf("sweep finished before the kill: %+v (grow the spec)", st)
				}
				if st.Status == statusRunning && st.Records >= 64 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("sweep never reached mid-run state with replicated progress")
				}
				time.Sleep(5 * time.Millisecond)
			}
			b0.cmd.Process.Signal(syscall.SIGKILL)
			b0.cmd.Wait() // no exit-code claim: SIGKILL is not graceful

			// Resurrect the backend on the same address and data dir — the
			// URL the coordinator's backend list still names.
			startDaemon(t, b0dir, "-listen", b0addr)

			done := co.awaitStatus(id, statusDone, 300*time.Second)
			var spec sweepSpec
			mustUnmarshalSpec(t, tc.spec, &spec)
			truth, fp := groundTruthStore(t, spec)
			if done.Fingerprint != fp {
				t.Errorf("post-chaos fingerprint %q != uninterrupted %q", done.Fingerprint, fp)
			}
			if done.Records != spec.Wearers {
				t.Errorf("records %d, want %d", done.Records, spec.Wearers)
			}
			if !bytes.Equal(storeBytes(t, coDir, id), truth) {
				t.Error("post-chaos merged store differs byte-for-byte from an uninterrupted single-writer run")
			}
			// The loss must have been visible to the retry machinery.
			if got := metricValue(t, co.metrics(), "iobfleetd_shard_retries_total"); got <= 0 {
				t.Errorf("shard_retries_total %v after a backend kill, want > 0", got)
			}
		})
	}
}
