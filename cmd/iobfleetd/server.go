package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"

	"wiban/internal/obs"
)

// newMux wires the daemon's HTTP surface:
//
//	GET  /healthz                   liveness (always 200 while serving)
//	GET  /metrics                   Prometheus text exposition
//	POST /api/sweeps                submit a sweep (sweepSpec JSON) → 202 + state
//	GET  /api/sweeps                all sweeps, submission order
//	GET  /api/sweeps/{id}           one sweep's state
//	GET  /api/sweeps/{id}/progress  NDJSON stream riding the block-commit tick
//	GET  /debug/pprof/...           Go profiling endpoints
func newMux(m *manager, reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("POST /api/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var spec sweepSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "bad sweep spec: "+err.Error())
			return
		}
		st, err := m.submit(spec)
		switch {
		case errors.Is(err, errDrained):
			httpError(w, http.StatusServiceUnavailable, "draining; resubmit to the next process")
		case err != nil:
			httpError(w, http.StatusBadRequest, err.Error())
		default:
			writeJSON(w, http.StatusAccepted, st)
		}
	})
	mux.HandleFunc("GET /api/sweeps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.list())
	})
	mux.HandleFunc("GET /api/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		sw, ok := m.get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such sweep")
			return
		}
		writeJSON(w, http.StatusOK, sw.snapshot())
	})
	mux.HandleFunc("GET /api/sweeps/{id}/progress", func(w http.ResponseWriter, r *http.Request) {
		sw, ok := m.get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such sweep")
			return
		}
		streamProgress(w, r, sw)
	})
	// pprof must be mounted by hand: the stdlib's init() registers on
	// http.DefaultServeMux, which this daemon deliberately does not serve.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// streamProgress serves one sweep's NDJSON progress stream: the current
// state immediately, then one line per committed telemetry block (and
// per status change), flushed as they happen. The stream ends with a
// line carrying "final": true when the sweep reaches a resting state —
// done, failed, or interrupted by a drain — or when the client leaves.
// Intermediate ticks are lossy under a slow reader (each line is a full
// snapshot, so the newest supersedes anything shed); the final line is
// guaranteed.
func streamProgress(w http.ResponseWriter, r *http.Request, sw *sweep) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sub := sw.subscribe()
	defer sw.unsubscribe(sub)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sub:
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			if ev.Final {
				return
			}
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
