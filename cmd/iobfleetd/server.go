package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"

	"wiban/internal/obs"
	"wiban/internal/telemetry"
)

// newMux wires the daemon's HTTP surface:
//
//	GET    /healthz                   readiness: 200 while accepting work, 503 once draining
//	GET    /metrics                   Prometheus text exposition
//	POST   /api/sweeps                submit a sweep (sweepSpec JSON) → 202 + state
//	GET    /api/sweeps                all sweeps, submission order
//	GET    /api/sweeps/{id}           one sweep's state
//	DELETE /api/sweeps/{id}           cancel: queued unqueues, running checkpoints-and-parks
//	GET    /api/sweeps/{id}/progress  NDJSON stream riding the block-commit tick
//	POST   /api/backends              register (or heartbeat) a backend {"url": ...}
//	GET    /api/backends              the membership table with per-entry liveness
//	DELETE /api/backends?url=...      deregister a backend
//	POST   /api/loads                 shard protocol: gather a wearer range's offered loads
//	GET    /api/sweeps/{id}/store     shard protocol: committed store bytes from an offset
//	GET    /api/sweeps/{id}/shards/{k}/store  coordinator's partial shard copy (seed store)
//	GET    /debug/pprof/...           Go profiling endpoints
func newMux(m *manager, reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Health is readiness, not liveness: a draining daemon 503s POSTs,
		// so it must 503 here too — coordinators select backends by this
		// probe, and "healthy but refuses work" would stall shard dispatch.
		if m.isDraining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("POST /api/sweeps", func(w http.ResponseWriter, r *http.Request) {
		var spec sweepSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "bad sweep spec: "+err.Error())
			return
		}
		st, err := m.submit(spec)
		switch {
		case errors.Is(err, errDrained):
			httpError(w, http.StatusServiceUnavailable, "draining; resubmit to the next process")
		case err != nil:
			httpError(w, http.StatusBadRequest, err.Error())
		default:
			writeJSON(w, http.StatusAccepted, st)
		}
	})
	mux.HandleFunc("GET /api/sweeps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.list())
	})
	mux.HandleFunc("GET /api/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		sw, ok := m.get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such sweep")
			return
		}
		// The process nonce: a coordinator polling a shard sub-sweep reads
		// a changed instance as "this backend died and came back", however
		// briefly the blink lasted.
		w.Header().Set("X-Iobfleetd-Instance", m.instance)
		writeJSON(w, http.StatusOK, sw.snapshot())
	})
	mux.HandleFunc("DELETE /api/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		// Cancellation works on a draining daemon too: a DELETE racing a
		// SIGTERM should still park the sweep terminally rather than let
		// the next process resume work nobody wants.
		st, err := m.cancel(r.PathValue("id"))
		switch {
		case errors.Is(err, errNoSweep):
			httpError(w, http.StatusNotFound, "no such sweep")
		case errors.Is(err, errTerminal):
			httpError(w, http.StatusConflict, "sweep already "+st.Status)
		case err != nil:
			httpError(w, http.StatusInternalServerError, err.Error())
		default:
			writeJSON(w, http.StatusOK, st)
		}
	})
	mux.HandleFunc("POST /api/backends", func(w http.ResponseWriter, r *http.Request) {
		// Registration doubles as the heartbeat. A draining coordinator
		// refuses: it is about to exit, and the backend's next beat will
		// land on the restarted process (which reloads the persisted table
		// anyway).
		if m.isDraining() {
			httpError(w, http.StatusServiceUnavailable, "draining; re-register with the next process")
			return
		}
		var reg struct {
			URL string `json:"url"`
		}
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&reg); err != nil {
			httpError(w, http.StatusBadRequest, "bad registration: "+err.Error())
			return
		}
		ms, err := m.members.register(reg.URL)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, ms)
	})
	mux.HandleFunc("GET /api/backends", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.members.list())
	})
	mux.HandleFunc("DELETE /api/backends", func(w http.ResponseWriter, r *http.Request) {
		if !m.members.deregister(r.URL.Query().Get("url")) {
			httpError(w, http.StatusNotFound, "no such backend")
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /api/sweeps/{id}/progress", func(w http.ResponseWriter, r *http.Request) {
		sw, ok := m.get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such sweep")
			return
		}
		streamProgress(w, r, sw)
	})
	mux.HandleFunc("POST /api/loads", func(w http.ResponseWriter, r *http.Request) {
		// The shard protocol's loads round: gather the spec's wearer range's
		// offered loads (and, in feedback mode, its members) and return them
		// for the coordinator to merge. Pure computation — no sweep state is
		// created — but a draining daemon still refuses so coordinators
		// rotate away before the process exits mid-gather.
		if m.isDraining() {
			httpError(w, http.StatusServiceUnavailable, "draining; ask another backend")
			return
		}
		var spec sweepSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "bad sweep spec: "+err.Error())
			return
		}
		if err := spec.normalize(); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if spec.Cells <= 0 {
			httpError(w, http.StatusBadRequest, "loads gather on an uncoupled spec")
			return
		}
		f, _, err := spec.build(m.stats)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		loads, members, err := f.GatherLoads()
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, loadsResponse{Loads: loads.Export(), Members: members})
	})
	mux.HandleFunc("GET /api/sweeps/{id}/store", func(w http.ResponseWriter, r *http.Request) {
		// The shard protocol's replication feed: the store's committed bytes
		// from ?from= (default 0) to the checkpoint. Safe against a live
		// writer — the checkpoint bounds the read, and committed bytes never
		// change — and never serves the trailing index frame, which lies
		// past the final checkpoint by design.
		sw, ok := m.get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such sweep")
			return
		}
		path := m.storePath(sw.snapshot().ID)
		_, off, next, err := telemetry.Committed(path)
		if err != nil {
			httpError(w, http.StatusNotFound, "no committed store yet: "+err.Error())
			return
		}
		from := int64(0)
		if q := r.URL.Query().Get("from"); q != "" {
			if from, err = strconv.ParseInt(q, 10, 64); err != nil || from < 0 {
				httpError(w, http.StatusBadRequest, "bad from offset")
				return
			}
		}
		if from > off {
			from = off // nothing new; serve an empty range rather than error
		}
		f, err := os.Open(path)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Committed-Offset", strconv.FormatInt(off, 10))
		w.Header().Set("X-Next-Wearer", strconv.Itoa(next))
		w.Header().Set("X-Sweep-Status", sw.snapshot().Status)
		w.Header().Set("Content-Length", strconv.FormatInt(off-from, 10))
		io.Copy(w, io.NewSectionReader(f, from, off-from))
	})
	mux.HandleFunc("GET /api/sweeps/{id}/shards/{k}/store", func(w http.ResponseWriter, r *http.Request) {
		// The coordinator's partial copy of shard k's store — the seed a
		// replacement backend resumes from. Served whole and unvalidated:
		// the receiver's scan-resume truncates any torn tail.
		sw, ok := m.get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such sweep")
			return
		}
		k, err := strconv.Atoi(r.PathValue("k"))
		if err != nil || k < 0 {
			httpError(w, http.StatusBadRequest, "bad shard index")
			return
		}
		f, err := os.Open(m.shardPath(sw.snapshot().ID, k))
		if err != nil {
			httpError(w, http.StatusNotFound, "no partial store for this shard")
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		io.Copy(w, f)
	})
	// pprof must be mounted by hand: the stdlib's init() registers on
	// http.DefaultServeMux, which this daemon deliberately does not serve.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// streamProgress serves one sweep's NDJSON progress stream: the current
// state immediately, then one line per committed telemetry block (and
// per status change), flushed as they happen. The stream ends with a
// line carrying "final": true when the sweep reaches a resting state —
// done, failed, or interrupted by a drain — or when the client leaves.
// Intermediate ticks are lossy under a slow reader (each line is a full
// snapshot, so the newest supersedes anything shed); the final line is
// guaranteed.
func streamProgress(w http.ResponseWriter, r *http.Request, sw *sweep) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sub := sw.subscribe()
	defer sw.unsubscribe(sub)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sub:
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			if ev.Final {
				return
			}
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
