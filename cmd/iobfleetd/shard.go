package main

// The coordinator half of the shard protocol. A sweep submitted with a
// shards field splits into contiguous wearer-range sub-sweeps dispatched
// to backend daemons (-backends, or this daemon itself) over the ordinary
// HTTP API. Coupled sweeps run two rounds: every shard first gathers its
// range's offered loads (POST /api/loads), the coordinator merges the
// partial tables — integer sums, so any partition merges bit-exactly —
// and, in feedback mode, runs the one deterministic equilibrium solve;
// the dispatch round then ships each shard its window of the solved
// results. Shard stores replicate back block by block as they commit and
// merge into one store bit-identical to a single-process run. Series
// sampling (series_seconds) rides the same protocol unchanged: each
// backend commits record+series frame pairs in one write, so the
// committed-prefix replication boundary (X-Committed-Offset) always
// sits after a complete pair, and telemetry.MergeShards re-pairs and
// re-encodes the samples at the merged block boundaries — the merged
// series store, trailing query index included, is byte-identical too.
//
// Fault model: a backend lost mid-shard is re-dispatched — to itself
// after a restart (the label finds the recovered sweep, which resumes
// from its local checkpoint) or to a replacement backend (which pulls the
// coordinator's partial copy as its seed store). Either way the shard's
// byte stream continues exactly where replication stopped, because every
// backend executing a shard writes the identical byte sequence.
//
// That same determinism licenses work-stealing: a shard whose committed
// progress stalls past -steal-after gets a speculative second copy on
// another live backend. Both copies write the identical byte stream, so
// the supervisor replicates from whichever answers, the first copy to
// reach committed-complete wins, and the loser is cancelled (DELETE) —
// the merged store cannot tell the difference. Backends come from the
// live membership table (static -backends entries plus dynamically
// registered daemons), gated on a drain-aware /healthz probe at
// selection time.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"wiban/internal/fleet"
	"wiban/internal/spectrum"
	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// shardPollInterval paces the supervisor's status/fetch loop against a
// healthy backend; retries after a backend error back off separately.
const shardPollInterval = 50 * time.Millisecond

// loadsResponse is the shard side's answer to POST /api/loads: the
// range's partial per-cell load table and, in feedback mode, its members
// in range order.
type loadsResponse struct {
	Loads   []spectrum.CellLoad `json:"loads"`
	Members []spectrum.Member   `json:"members,omitempty"`
}

// shardRanges splits [0, wearers) into shards contiguous ranges, sizes
// differing by at most one (the first wearers%shards ranges get the extra
// wearer). Deterministic, so a restarted coordinator re-derives the same
// tiling.
func shardRanges(wearers, shards int) [][2]int {
	base, extra := wearers/shards, wearers%shards
	out := make([][2]int, shards)
	next := 0
	for k := range out {
		n := base
		if k < extra {
			n++
		}
		out[k] = [2]int{next, next + n}
		next += n
	}
	return out
}

// shardSub derives shard k's sub-spec: the same sweep identity with the
// shard's wearer range and no coordinator knob. The loads round sends it
// bare; the dispatch round adds Label, SeedStoreURL and Presolved.
func shardSub(spec sweepSpec, rng [2]int) sweepSpec {
	sub := spec
	sub.Shards = 0
	sub.FirstWearer = rng[0]
	sub.EndWearer = rng[1]
	if sub.EndWearer == sub.Wearers {
		sub.EndWearer = 0 // the canonical full-range spelling normalize() uses
	}
	return sub
}

func (m *manager) storePath(id string) string { return filepath.Join(m.dir, id+".wtl") }

func (m *manager) shardPath(id string, k int) string {
	return filepath.Join(m.dir, fmt.Sprintf("%s.shard%d.wtl", id, k))
}

// backendFor is shard k's dispatch target on the given attempt: shards
// spread round-robin over the live membership (sorted, so placement is
// deterministic for a given fleet) and rotate on failure. With no
// membership entries at all every shard loops back to this daemon
// itself; with entries known but none currently live it returns "" and
// the caller waits for a heartbeat — a fleet that is momentarily
// all-dead must not silently collapse into loopback self-dispatch.
func (m *manager) backendFor(k, attempt int) string {
	live, any := m.members.live()
	if len(live) == 0 {
		if any {
			return ""
		}
		return m.selfBase
	}
	return live[(k+attempt)%len(live)]
}

// healthy probes a backend's readiness. A draining backend answers 503
// (it would refuse the submission anyway), so selection skips it.
func (m *manager) healthy(base string) bool {
	resp, err := m.client.Get(base + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// drained reports whether the daemon began draining; pause sleeps without
// outliving a drain.
func (m *manager) drained() bool {
	select {
	case <-m.drain:
		return true
	default:
		return false
	}
}

// pause sleeps for d without outliving a drain or the sweep's
// cancellation — a pending backoff timer must never delay either. A nil
// cancel channel (contexts without a sweep) simply never fires.
func (m *manager) pause(d time.Duration, cancel <-chan struct{}) {
	select {
	case <-m.drain:
	case <-cancel:
	case <-time.After(d):
	}
}

// backoffDelay is the retry pacing after a backend error: exponential
// from 50ms to a 500ms ceiling, jittered uniformly over [cap/2, cap) so
// a fleet of supervisors losing the same backend re-probes staggered
// instead of in lockstep.
func backoffDelay(attempt int) time.Duration {
	d := 50 * time.Millisecond
	for i := 0; i < attempt && d < 500*time.Millisecond; i++ {
		d *= 2
	}
	if d > 500*time.Millisecond {
		d = 500 * time.Millisecond
	}
	return d/2 + rand.N(d/2)
}

// httpStatusError is a non-2xx backend answer, kept typed so dispatch can
// tell a permanent rejection (a 400 is deterministic — the same spec will
// be rejected again) from a transient one worth retrying elsewhere.
type httpStatusError struct {
	code int
	msg  string
}

func (e *httpStatusError) Error() string { return fmt.Sprintf("HTTP %d: %s", e.code, e.msg) }

func permanent(err error) bool {
	var se *httpStatusError
	return errors.As(err, &se) && se.code == http.StatusBadRequest
}

func (m *manager) postJSON(url string, in, out any) error {
	raw, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := m.client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return &httpStatusError{resp.StatusCode, strings.TrimSpace(string(body))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// getJSON fetches and decodes one API object, also reporting the
// responding daemon's X-Iobfleetd-Instance nonce ("" when absent).
func (m *manager) getJSON(url string, out any) (string, error) {
	resp, err := m.client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	inst := resp.Header.Get("X-Iobfleetd-Instance")
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return inst, err
	}
	if resp.StatusCode != http.StatusOK {
		return inst, &httpStatusError{resp.StatusCode, strings.TrimSpace(string(body))}
	}
	return inst, json.Unmarshal(body, out)
}

// runSharded executes a coordinator sweep: the loads round across the
// shard backends (coupled sweeps only), the shard sub-sweeps themselves
// with their stores replicated back as they commit, then the merge into
// one full-population store. The merged store, its fingerprint and its
// trailing index are bit-identical to a single-process run of the same
// spec: phase 1 merges commutative integer tables, the solve is a pure
// function of the concatenated members, phase-2 records are pure
// functions of (seed, wearer, tables), and the merge re-encodes the
// identical record sequence — series samples re-paired at the merged
// block boundaries — through the same Writer. A failed merge removes
// its partial output (Writer.Discard), so the shard partials on disk
// stay the only recovery state.
func (m *manager) runSharded(sw *sweep, spec sweepSpec, storePath string) {
	start := time.Now()
	ranges := shardRanges(spec.Wearers, spec.Shards)
	cancel := sw.cancelChan()

	var (
		loads []spectrum.CellLoad
		res   *spectrum.Result
	)
	if spec.Cells > 0 {
		var err error
		if loads, res, err = m.gatherShards(spec, ranges, cancel); err != nil {
			switch {
			case errors.Is(err, errCancelled):
				m.finish(sw, statusCancelled, "")
			case errors.Is(err, errDrained):
				m.finish(sw, statusInterrupted, "")
			default:
				m.finish(sw, statusFailed, err.Error())
			}
			return
		}
	}

	// Parent progress is the sum of the shards' committed record counts,
	// re-published whenever any supervisor learns a new figure. Blocks and
	// bytes stay 0 until the merge — they describe the merged store.
	counts := make([]int, len(ranges))
	var cmu sync.Mutex
	progress := func(k, records int) {
		cmu.Lock()
		counts[k] = records
		total := 0
		for _, c := range counts {
			total += c
		}
		cmu.Unlock()
		sw.mu.Lock()
		if total != sw.st.Records {
			sw.st.Records = total
			sw.publish(false)
		}
		sw.mu.Unlock()
	}

	paths := make([]string, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for k := range ranges {
		paths[k] = m.shardPath(sw.st.ID, k)
		sub := shardSub(spec, ranges[k])
		sub.Label = sw.st.ID + "/shard" + strconv.Itoa(k)
		sub.SeedStoreURL = fmt.Sprintf("%s/api/sweeps/%s/shards/%d/store", m.selfBase, sw.st.ID, k)
		if spec.Cells > 0 {
			pre := &presolvedSpec{Loads: loads}
			if res != nil {
				pre.Eq = &eqSpec{
					Table: res.Table().Export(),
					Iters: res.ExportIters(),
					Own:   res.ExportOwn(ranges[k][0], ranges[k][1]),
				}
			}
			sub.Presolved = pre
		}
		wg.Add(1)
		go func(k int, sub sweepSpec) {
			defer wg.Done()
			errs[k] = m.superviseShard(sub, k, paths[k], cancel, progress)
		}(k, sub)
	}
	wg.Wait()

	removePartials := func() {
		for _, p := range paths {
			os.Remove(p)
			os.Remove(telemetry.CheckpointPath(p))
		}
	}
	var failErr error
	drained, cancelled := false, false
	for _, err := range errs {
		switch {
		case errors.Is(err, errCancelled):
			cancelled = true
		case errors.Is(err, errDrained):
			drained = true
		case err != nil && failErr == nil:
			failErr = err
		}
	}
	if failErr != nil {
		// Failed is terminal and never resumed: the shard partials are
		// garbage, not recovery state.
		m.finish(sw, statusFailed, failErr.Error())
		removePartials()
		return
	}
	if cancelled {
		m.finish(sw, statusCancelled, "")
		removePartials()
		return
	}
	if drained {
		// Partials stay on disk: the restarted coordinator re-dispatches by
		// label and resumes replication exactly where it stopped — unless a
		// DELETE arrived during the drain, in which case the sweep parked
		// cancelled and the partials are garbage after all.
		if m.finish(sw, statusInterrupted, "") == statusCancelled {
			removePartials()
		}
		return
	}

	agg := fleet.NewStreamAggregator(units.Duration(spec.DurSeconds))
	blocks, size, err := telemetry.MergeShards(storePath, paths, agg.Consume)
	if err != nil {
		m.finish(sw, statusFailed, err.Error())
		return
	}
	m.metrics.blocksWritten.Add(float64(blocks))
	m.metrics.bytesWritten.Add(float64(size))
	m.metrics.sweepSeconds.Observe(time.Since(start).Seconds())
	sw.mu.Lock()
	sw.st.Fingerprint = agg.Report().Fingerprint()
	sw.st.Records = agg.Wearers()
	sw.st.Blocks = blocks
	sw.st.Bytes = size
	sw.mu.Unlock()
	m.finish(sw, statusDone, "")
	for _, p := range paths {
		os.Remove(p)
		os.Remove(telemetry.CheckpointPath(p))
	}
}

// gatherShards is the coupled protocol's loads round: every shard reports
// its range's partial table concurrently, the coordinator merges them
// and — in feedback mode — concatenates the member windows by absolute
// index and runs the one deterministic equilibrium solve. The merged
// table and solution are bit-identical to an in-process phase 1 because
// the table sums are commutative integers and Solve is a pure function.
func (m *manager) gatherShards(spec sweepSpec, ranges [][2]int, cancel <-chan struct{}) ([]spectrum.CellLoad, *spectrum.Result, error) {
	type gather struct {
		resp loadsResponse
		err  error
	}
	results := make([]gather, len(ranges))
	var wg sync.WaitGroup
	for k := range ranges {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			results[k].resp, results[k].err = m.gatherShard(k, shardSub(spec, ranges[k]), cancel)
		}(k)
	}
	wg.Wait()

	total, err := spectrum.NewLoadTable(spec.Cells)
	if err != nil {
		return nil, nil, err
	}
	var members []spectrum.Member
	if spec.Feedback {
		members = make([]spectrum.Member, spec.Wearers)
	}
	for k := range results {
		r := &results[k]
		if r.err != nil {
			return nil, nil, r.err
		}
		part, err := spectrum.ImportTable(spec.Cells, r.resp.Loads)
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d loads: %w", k, err)
		}
		if err := total.Merge(part); err != nil {
			return nil, nil, err
		}
		if members != nil {
			first, end := ranges[k][0], ranges[k][1]
			if len(r.resp.Members) != end-first {
				return nil, nil, fmt.Errorf("shard %d returned %d members for range [%d,%d)",
					k, len(r.resp.Members), first, end)
			}
			copy(members[first:end], r.resp.Members)
		}
	}
	loads := total.Export()
	if members == nil {
		return loads, nil, nil
	}
	solveStart := time.Now()
	eq := spectrum.Equilibrium{MaxIters: spec.MaxIters, TolPPM: spec.TolPPM}
	res, err := eq.Solve(spec.Cells, members)
	if err != nil {
		return nil, nil, fmt.Errorf("equilibrium phase: %w", err)
	}
	m.stats.Phase1SolveNS.Add(time.Since(solveStart).Nanoseconds())
	var iters int64
	for _, ci := range res.ExportIters() {
		iters += int64(ci.Iters)
	}
	m.stats.EquilibriumIters.Add(iters)
	m.stats.EquilibriumCells.Add(int64(spec.Cells))
	return loads, res, nil
}

// gatherShard asks one backend for a shard's partial loads, rotating
// backends until one answers; a 400 is a deterministic spec rejection and
// fails the sweep, everything else retries.
func (m *manager) gatherShard(k int, sub sweepSpec, cancel <-chan struct{}) (loadsResponse, error) {
	var out loadsResponse
	for attempt := 0; ; attempt++ {
		select {
		case <-cancel:
			return out, errCancelled
		default:
		}
		if m.drained() {
			return out, errDrained
		}
		if b := m.backendFor(k, attempt); b != "" && m.healthy(b) {
			err := m.postJSON(b+"/api/loads", sub, &out)
			if err == nil {
				return out, nil
			}
			if permanent(err) {
				return out, fmt.Errorf("shard %d loads rejected by %s: %w", k, b, err)
			}
		}
		m.metrics.shardRetries.Inc()
		m.pause(backoffDelay(attempt), cancel)
	}
}

// shardHost is one backend currently executing a shard's sub-sweep.
// Normally there is exactly one; a straggler gets a speculative second
// copy, and the first to reach committed-complete wins. instance pins
// the daemon process the sub-sweep was observed on, so a SIGKILL +
// restart that fits inside one poll interval — every request before and
// after it succeeding — is still detected as a loss.
type shardHost struct {
	base     string
	id       string
	instance string
}

// superviseShard owns one shard from dispatch to full replication. It
// submits the sub-sweep (idempotently, by label) to a live backend,
// polls its state, and appends each newly committed byte range of its
// store to the local partial copy. A backend lost or drained mid-shard
// is re-dispatched: a restarted backend finds the label in its
// recovered state and resumes from its own checkpoint; a replacement
// backend pulls the partial copy as its seed store. Both write the
// identical byte stream, so the partial only ever extends.
//
// Straggler stealing rides the same invariant: when the shard's
// committed progress stalls past stealAfter with a single host, a
// second copy of the identical sub-sweep is dispatched to another live
// backend and the supervisor replicates from whichever copy is ahead.
// The first host whose store is done AND fully replicated to the range
// end wins; every other copy is cancelled. The host list is sticky —
// membership expiry only gates NEW dispatch, so a heartbeat hiccup
// never drops a host that is still answering.
func (m *manager) superviseShard(sub sweepSpec, k int, path string, cancel <-chan struct{}, progress func(k, records int)) error {
	local := prepPartial(path)
	end := sub.EndWearer
	if end == 0 {
		end = sub.Wearers
	}
	var hosts []shardHost
	drop := func(i int) {
		hosts = append(hosts[:i], hosts[i+1:]...)
		m.metrics.shardRetries.Inc()
	}
	attempt := 0
	records := 0
	lastAdvance := time.Now()
	for {
		select {
		case <-cancel:
			// The parent sweep was cancelled: disown every copy so no
			// backend keeps simulating for a coordinator that left.
			for _, h := range hosts {
				m.cancelRemote(h.base, h.id)
			}
			return errCancelled
		default:
		}
		if m.drained() {
			return errDrained
		}
		if len(hosts) == 0 {
			b := m.backendFor(k, attempt)
			attempt++
			if b == "" || !m.healthy(b) {
				m.metrics.shardRetries.Inc()
				m.pause(backoffDelay(attempt), cancel)
				continue
			}
			var st sweepState
			if err := m.postJSON(b+"/api/sweeps", sub, &st); err != nil {
				if permanent(err) {
					return fmt.Errorf("shard %d rejected by %s: %w", k, b, err)
				}
				m.metrics.shardRetries.Inc()
				m.pause(backoffDelay(attempt), cancel)
				continue
			}
			hosts = append(hosts, shardHost{base: b, id: st.ID})
			m.metrics.shardsDispatched.Inc()
			lastAdvance = time.Now()
		}
		if m.stealAfter > 0 && len(hosts) == 1 && time.Since(lastAdvance) > m.stealAfter {
			if b := m.stealTarget(k, hosts); b != "" {
				var st sweepState
				if err := m.postJSON(b+"/api/sweeps", sub, &st); err == nil {
					hosts = append(hosts, shardHost{base: b, id: st.ID})
					m.metrics.shardsDispatched.Inc()
					m.metrics.shardsStolen.Inc()
				}
			}
			// Re-arm the deadline whether or not a target existed: one
			// speculative copy per stall, not one per poll tick.
			lastAdvance = time.Now()
		}
		advanced := false
		for i := 0; i < len(hosts); i++ {
			h := hosts[i]
			var st sweepState
			inst, err := m.getJSON(h.base+"/api/sweeps/"+h.id, &st)
			if err != nil {
				drop(i)
				i--
				continue
			}
			if h.instance == "" {
				hosts[i].instance = inst
			} else if inst != h.instance {
				// Same address, different process: the backend died and came
				// back inside a poll interval. Re-dispatch by label — the
				// recovered sweep answers the resubmission idempotently, so
				// this costs one POST, never a duplicate simulation.
				drop(i)
				i--
				continue
			}
			if st.Status == statusFailed {
				// Deterministic execution: a failure on one host would fail
				// identically everywhere, so give up rather than re-dispatch.
				for _, o := range hosts {
					if o != h {
						m.cancelRemote(o.base, o.id)
					}
				}
				return fmt.Errorf("shard %d failed on %s: %s", k, h.base, st.Error)
			}
			n, next, err := m.fetchShard(h.base, h.id, path, local)
			if err != nil {
				drop(i)
				i--
				continue
			}
			if n > 0 {
				local += n
				advanced = true
			}
			if st.Records > records {
				records = st.Records
				progress(k, records)
				advanced = true
			}
			switch st.Status {
			case statusDone:
				if next >= end {
					// Committed-complete and fully replicated: this copy wins.
					// Cancel the rest best-effort — a missed DELETE only wastes
					// backend cycles, never correctness.
					for _, o := range hosts {
						if o != h {
							m.cancelRemote(o.base, o.id)
						}
					}
					return nil
				}
				// A done status whose replicated store stops short of the
				// range end means the backend lost or pruned the store between
				// commit and fetch (retention, disk loss): drop the host and
				// re-dispatch rather than merge an incomplete partial.
				drop(i)
				i--
			case statusInterrupted, statusCancelled:
				// The backend parked the copy (its own drain, or an operator
				// DELETE): drop it — same label on a restart resumes it,
				// another backend seed-pulls the partial.
				drop(i)
				i--
			}
		}
		if advanced {
			lastAdvance = time.Now()
		}
		m.pause(shardPollInterval, cancel)
	}
}

// stealTarget picks a live, healthy backend not already hosting this
// shard for the speculative copy; "" when the fleet has no spare.
func (m *manager) stealTarget(k int, hosts []shardHost) string {
	live, _ := m.members.live()
	for i := range live {
		b := live[(k+i)%len(live)]
		taken := false
		for _, h := range hosts {
			if h.base == b {
				taken = true
				break
			}
		}
		if !taken && m.healthy(b) {
			return b
		}
	}
	return ""
}

// cancelRemote disowns one sub-sweep copy, best-effort: the losing side
// of a steal, or every copy of a cancelled parent. Failures are ignored
// — an unreachable backend's copy dies with it, and a live one's costs
// only cycles.
func (m *manager) cancelRemote(base, id string) {
	req, err := http.NewRequest(http.MethodDelete, base+"/api/sweeps/"+id, nil)
	if err != nil {
		return
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// prepPartial validates the local partial copy of a shard store,
// truncating any torn tail a kill left mid-append, and reports its
// trusted byte length (0 after discarding an unusable file). The
// checkpoint sidecar Resume writes is removed again: the supervisor
// appends raw fetched bytes past it, so a later restart must re-scan the
// file rather than trust a stale offset that would discard replicated
// blocks.
func prepPartial(path string) int64 {
	if st, err := os.Stat(path); err != nil || st.Size() == 0 {
		os.Remove(path)
		os.Remove(telemetry.CheckpointPath(path))
		return 0
	}
	w, err := telemetry.Resume(path)
	if err != nil {
		os.Remove(path)
		os.Remove(telemetry.CheckpointPath(path))
		return 0
	}
	size := w.Offset()
	w.Abort()
	os.Remove(telemetry.CheckpointPath(path))
	return size
}

// fetchShard appends the shard store's bytes [local, committed) from the
// hosting backend to the local partial. The stream is append-only and
// deterministic — every backend executing the shard writes the identical
// byte sequence — so appending from whichever backend currently hosts it
// can never diverge, even across a backend swap mid-shard. A failed copy
// truncates back to local so the partial never carries a torn tail into
// the next attempt.
//
// Alongside the byte count it reports the store's committed next-wearer
// (X-Next-Wearer; -1 when the backend has no committed store yet) — the
// supervisor's completeness witness: a "done" status only wins once the
// replicated store provably reaches the shard's range end, so a backend
// that pruned the store between commit and fetch cannot pass off a
// short partial as complete.
func (m *manager) fetchShard(base, remoteID, path string, local int64) (int64, int, error) {
	resp, err := m.client.Get(fmt.Sprintf("%s/api/sweeps/%s/store?from=%d", base, remoteID, local))
	if err != nil {
		return 0, -1, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return 0, -1, nil // no committed store yet (sweep still queued); poll again
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return 0, -1, &httpStatusError{resp.StatusCode, strings.TrimSpace(string(body))}
	}
	next := -1
	if v, err := strconv.Atoi(resp.Header.Get("X-Next-Wearer")); err == nil {
		next = v
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return 0, next, err
	}
	if _, err := f.Seek(local, 0); err != nil {
		f.Close()
		return 0, next, err
	}
	n, err := io.Copy(f, resp.Body)
	cerr := f.Close()
	if err == nil {
		err = cerr
	}
	if err != nil {
		os.Truncate(path, local)
		return 0, next, err
	}
	m.metrics.shardFetchBytes.Add(float64(n))
	return n, next, nil
}

// fetchSeedStore pulls the coordinator's partial copy of a shard store
// into path, so a replacement backend resumes from the blocks already
// replicated off the lost one instead of re-simulating from scratch.
// Best-effort: any failure leaves no seed behind and the caller starts a
// scratch store — slower, but bit-identical by determinism.
func (m *manager) fetchSeedStore(url, path string) bool {
	resp, err := m.client.Get(url)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	tmp := path + ".fetch"
	f, err := os.Create(tmp)
	if err != nil {
		return false
	}
	n, err := io.Copy(f, resp.Body)
	cerr := f.Close()
	if err != nil || cerr != nil || n == 0 {
		os.Remove(tmp)
		return false
	}
	// Drop any stale checkpoint before the rename: the sidecar describes
	// the file being replaced, and the seed-pulled store is validated by
	// the scan-resume path instead.
	if err := os.Remove(telemetry.CheckpointPath(path)); err != nil && !os.IsNotExist(err) {
		os.Remove(tmp)
		return false
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return false
	}
	m.metrics.shardFetchBytes.Add(float64(n))
	return true
}
