package main

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"wiban/internal/chaoskit"
)

// chaosEnvInt reads an integer knob for the sustained chaos harness,
// so CI can shrink the run (fewer sweeps, shorter window) without a
// separate test.
func chaosEnvInt(t *testing.T, name string, def int) int {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		t.Fatalf("%s=%q: want a positive integer", name, v)
	}
	return n
}

// TestSustainedChaos is the robustness acceptance gate: a stream of
// sweeps across a dynamically-registered fleet while a seeded adversary
// SIGKILLs, drains, restarts, spawns and deregisters backends and
// cancels sweeps at random. Whatever the schedule, the invariants must
// hold: no sweep fails, every sweep that completes is byte-identical to
// an uninterrupted single-writer run of its spec, cancelled sweeps
// leave no partial stores behind, and every gauge — queue slots,
// running slots, goroutines — settles back to quiescence.
//
// The schedule is reproducible: IOBFLEETD_CHAOS_SEED pins the decision
// sequence (the journal logs it on every run), IOBFLEETD_CHAOS_SWEEPS
// and IOBFLEETD_CHAOS_SECONDS scale the load and the chaos window.
func TestSustainedChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained multi-daemon chaos in -short mode")
	}
	seed := int64(chaosEnvInt(t, "IOBFLEETD_CHAOS_SEED", 1))
	nsweeps := chaosEnvInt(t, "IOBFLEETD_CHAOS_SWEEPS", 12)
	window := time.Duration(chaosEnvInt(t, "IOBFLEETD_CHAOS_SECONDS", 10)) * time.Second

	coDir := t.TempDir()
	co := startDaemon(t, coDir, "-sweeps", "4", "-steal-after", "2s", "-expire", "2s")
	baseGoroutines := metricValue(t, co.metrics(), "iobfleetd_goroutines")

	type backend struct {
		addr, dir string
		d         *daemon // nil while dead
	}
	var pool []*backend
	spawn := func(b *backend) {
		b.d = startDaemon(t, b.dir, "-listen", b.addr,
			"-register", co.base, "-heartbeat", "300ms", "-retain", "8", "-sweeps", "3")
	}
	for i := 0; i < 2; i++ {
		b := &backend{addr: freePort(t), dir: t.TempDir()}
		spawn(b)
		pool = append(pool, b)
	}
	awaitLiveBackends(t, co, 2, 30*time.Second)

	// Four spec shapes: sharded first-order, sharded feedback, sharded
	// series, and a plain unsharded sweep that runs on the coordinator
	// itself. Same-shape sweeps share a spec, so one ground-truth run
	// vouches for all of them.
	shapes := []string{
		`{"wearers":9000,"seed":41,"dur_seconds":20,"workers":2,"ble_frac":0.5,"cells":8,"block_size":64,"shards":3}`,
		`{"wearers":9000,"seed":42,"dur_seconds":20,"workers":2,"ble_frac":0.5,"cells":8,"feedback":true,"max_iters":64,"tol_ppm":200,"block_size":64,"shards":3}`,
		`{"wearers":9000,"seed":43,"dur_seconds":20,"workers":2,"ble_frac":0.5,"cells":8,"series_seconds":8,"block_size":64,"shards":3}`,
		`{"wearers":6000,"seed":44,"dur_seconds":15,"workers":2,"ble_frac":0.5,"block_size":64}`,
	}
	shapeOf := map[string]int{}
	var ids []string
	for i := 0; i < nsweeps; i++ {
		st := co.submit(shapes[i%len(shapes)])
		ids = append(ids, st.ID)
		shapeOf[st.ID] = i % len(shapes)
	}

	c := chaoskit.New(seed)
	actions := []chaoskit.Action{
		{Name: "kill", Weight: 3},
		{Name: "restart", Weight: 3},
		{Name: "drain", Weight: 1},
		{Name: "spawn", Weight: 1},
		{Name: "cancel", Weight: 2},
	}
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		time.Sleep(c.Between(300*time.Millisecond, 1200*time.Millisecond))
		switch act := c.Pick(actions).Name; act {
		case "kill", "drain":
			var alive []*backend
			for _, b := range pool {
				if b.d != nil {
					alive = append(alive, b)
				}
			}
			if len(alive) == 0 {
				c.Log("%s: nothing alive to fault", act)
				continue
			}
			b := alive[c.Intn(len(alive))]
			if act == "kill" {
				b.d.cmd.Process.Signal(syscall.SIGKILL)
			} else {
				b.d.cmd.Process.Signal(syscall.SIGTERM) // graceful: drains and deregisters
			}
			b.d.cmd.Wait()
			b.d = nil
			c.Log("%s %s", act, b.addr)
		case "restart":
			var dead []*backend
			for _, b := range pool {
				if b.d == nil {
					dead = append(dead, b)
				}
			}
			if len(dead) == 0 {
				c.Log("restart: nothing dead")
				continue
			}
			b := dead[c.Intn(len(dead))]
			spawn(b) // same address, same data dir: recovery + re-registration
			c.Log("restart %s", b.addr)
		case "spawn":
			b := &backend{addr: freePort(t), dir: t.TempDir()}
			spawn(b)
			pool = append(pool, b)
			c.Log("spawn %s", b.addr)
		case "cancel":
			id := ids[c.Intn(len(ids))]
			req, _ := http.NewRequest(http.MethodDelete, co.base+"/api/sweeps/"+id, nil)
			code := 0
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
				code = resp.StatusCode
			}
			c.Log("cancel %s -> %d", id, code)
		}
	}
	// Heal the fleet so the backlog can finish.
	for _, b := range pool {
		if b.d == nil {
			spawn(b)
			c.Log("heal-restart %s", b.addr)
		}
	}
	t.Logf("chaos journal (seed %d):\n%s", c.Seed(), c.Journal())

	// Every sweep settles terminally...
	finals := map[string]sweepState{}
	if !chaoskit.Settle(360*time.Second, 250*time.Millisecond, func() bool {
		var all []sweepState
		co.getJSON("/api/sweeps", &all)
		n := 0
		for _, st := range all {
			if st.terminal() {
				finals[st.ID] = st
				n++
			}
		}
		return n == len(all)
	}) {
		var all []sweepState
		co.getJSON("/api/sweeps", &all)
		t.Fatalf("sweeps never settled terminally: %+v", all)
	}

	// ...none by failure, and every completed one byte-identical to the
	// uninterrupted single-writer ground truth of its shape.
	truthBytes := map[int][]byte{}
	truthFP := map[int]string{}
	done := 0
	for _, id := range ids {
		st := finals[id]
		switch st.Status {
		case statusFailed:
			t.Errorf("sweep %s failed under chaos: %s", id, st.Error)
		case statusDone:
			done++
			shape := shapeOf[id]
			if _, ok := truthFP[shape]; !ok {
				var spec sweepSpec
				mustUnmarshalSpec(t, shapes[shape], &spec)
				truthBytes[shape], truthFP[shape] = groundTruthStore(t, spec)
			}
			if st.Fingerprint != truthFP[shape] {
				t.Errorf("sweep %s fingerprint %q != ground truth %q", id, st.Fingerprint, truthFP[shape])
			}
			if !bytes.Equal(storeBytes(t, coDir, id), truthBytes[shape]) {
				t.Errorf("sweep %s store differs byte-for-byte from ground truth", id)
			}
		}
	}
	t.Logf("%d/%d sweeps completed, %d cancelled", done, len(ids), len(ids)-done)

	// No partial-store leaks on the coordinator...
	if !chaoskit.Settle(30*time.Second, 250*time.Millisecond, func() bool {
		left, _ := filepath.Glob(filepath.Join(coDir, "*.shard*"))
		return len(left) == 0
	}) {
		left, _ := filepath.Glob(filepath.Join(coDir, "*.shard*"))
		t.Errorf("partial shard stores leaked: %v", left)
	}

	// ...no queue-slot leaks anywhere (orphaned sub-sweeps a restarted
	// backend recovered are allowed to run out; they must then settle)...
	quiescent := func(d *daemon) bool {
		text := d.metrics()
		return metricValue(t, text, "iobfleetd_sweeps_queued") == 0 &&
			metricValue(t, text, "iobfleetd_sweeps_running") == 0
	}
	if !chaoskit.Settle(180*time.Second, 500*time.Millisecond, func() bool {
		if !quiescent(co) {
			return false
		}
		for _, b := range pool {
			if b.d != nil && !quiescent(b.d) {
				return false
			}
		}
		return true
	}) {
		t.Error("queued/running gauges never settled to zero across the fleet")
	}

	// ...and no goroutine leaks on the coordinator: every supervisor,
	// progress stream and runner hand-off wound down.
	if !chaoskit.Settle(60*time.Second, 500*time.Millisecond, func() bool {
		return metricValue(t, co.metrics(), "iobfleetd_goroutines") <= baseGoroutines+32
	}) {
		t.Errorf("coordinator goroutines %v never settled near baseline %v",
			metricValue(t, co.metrics(), "iobfleetd_goroutines"), baseGoroutines)
	}
}
