package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"time"

	"wiban/internal/fleet"
	"wiban/internal/obs"
	"wiban/internal/telemetry"
)

// errDrained is the sentinel a draining daemon injects into every
// running sweep's sink: the engine aborts at the next record boundary,
// the store keeps its last committed checkpoint, and the sweep parks as
// "interrupted" for the next process to resume.
var errDrained = errors.New("iobfleetd: draining")

// Sweep statuses. A sweep moves queued → running → {done, failed,
// interrupted}; interrupted and (recovered) running/queued sweeps
// re-enter the queue on restart. done and failed are terminal.
const (
	statusQueued      = "queued"
	statusRunning     = "running"
	statusDone        = "done"
	statusFailed      = "failed"
	statusInterrupted = "interrupted"
)

// sweepState is everything the daemon knows about one sweep — exactly
// what the `<id>.json` sidecar persists and the API serves. Progress
// fields (records, blocks, bytes) track the telemetry store's committed
// prefix, so they are durable truth, not optimistic in-memory counts.
type sweepState struct {
	ID          string    `json:"id"`
	Spec        sweepSpec `json:"spec"`
	Status      string    `json:"status"`
	Records     int       `json:"records"`
	Blocks      int       `json:"blocks"`
	Bytes       int64     `json:"bytes"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	Error       string    `json:"error,omitempty"`
}

func (st *sweepState) terminal() bool {
	return st.Status == statusDone || st.Status == statusFailed
}

// progressEvent is one NDJSON line on a sweep's progress stream: the
// sweep's state snapshot at a block-commit tick (or status change).
// Final marks the last event a subscriber will receive.
type progressEvent struct {
	sweepState
	WearersTotal int  `json:"wearers_total"`
	Final        bool `json:"final"`
}

// sweep is the in-memory half of a sweepState: the mutable state plus
// its progress subscribers. All fields are guarded by mu.
type sweep struct {
	mu   sync.Mutex
	st   sweepState
	subs map[chan progressEvent]struct{}
}

func (sw *sweep) snapshot() sweepState {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.st
}

// subscribe registers a progress listener. The current state arrives
// immediately as the first event, so a subscriber never waits for the
// next commit tick to learn where the sweep stands; if the sweep is
// already terminal that first event is also the last.
func (sw *sweep) subscribe() chan progressEvent {
	ch := make(chan progressEvent, 16)
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.subs == nil {
		sw.subs = make(map[chan progressEvent]struct{})
	}
	sw.subs[ch] = struct{}{}
	ch <- sw.event(sw.st.terminal() || sw.st.Status == statusInterrupted)
	return ch
}

func (sw *sweep) unsubscribe(ch chan progressEvent) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	delete(sw.subs, ch)
}

// event builds the progress event for the current state. Caller holds mu.
func (sw *sweep) event(final bool) progressEvent {
	return progressEvent{sweepState: sw.st, WearersTotal: sw.st.Spec.Wearers, Final: final}
}

// publish fans the current state out to every subscriber. Sends are
// lossy for intermediate events — a slow reader's oldest buffered event
// is dropped to make room — but never for the event itself: after the
// drop there is always room, so the final event always lands. Caller
// holds mu (the publisher is single-threaded per sweep: its runner).
func (sw *sweep) publish(final bool) {
	ev := sw.event(final)
	for ch := range sw.subs {
		select {
		case ch <- ev:
		default:
			select {
			case <-ch: // shed the oldest event; the snapshot supersedes it
			default:
			}
			ch <- ev
		}
	}
}

// defaultQueueCap bounds how many sweeps may wait for a runner before
// submissions are refused. Recovery is exempt: a restart re-queues every
// non-terminal sidecar however many there are, so a daemon can always
// pick its own state back up.
const defaultQueueCap = 4096

// manager owns the sweep set: submissions, the bounded runner pool, the
// sidecar persistence, crash recovery, the drain protocol and — for
// sweeps with a shards field — the multi-backend coordinator.
type manager struct {
	dir     string
	stats   *fleet.Stats // shared by every sweep; counters accumulate daemon-wide
	metrics *daemonMetrics

	drain chan struct{} // closed when draining; never reopened
	wg    sync.WaitGroup

	backends []string // shard dispatch targets; empty = loopback self-dispatch
	selfBase string   // this daemon's own base URL, set by start() after listen
	client   *http.Client
	slots    int

	mu       sync.Mutex
	cond     *sync.Cond // wakes runners when pending gains work or drain begins
	pending  []*sweep   // FIFO of sweeps awaiting a runner (unbounded; queueCap gates submissions only)
	draining bool
	queueCap int
	sweeps   map[string]*sweep
	order    []string          // submission order (ID order)
	byLabel  map[string]string // shard label → sweep ID (idempotent re-dispatch)
	nextID   int
	queued   int
	running  int
}

// daemonMetrics is the daemon's own event-driven metric set. The
// engine-sourced series (wearers, events, phase-1 time, equilibrium
// iterations, window depth) are registered as func metrics over the
// shared fleet.Stats and need no fields here.
type daemonMetrics struct {
	submitted, started, completed, failed, interrupted, resumed *obs.Counter
	blocksWritten, bytesWritten                                 *obs.Counter
	shardsDispatched, shardRetries, shardFetchBytes             *obs.Counter
	sweepSeconds, phase1Seconds, allocBytes                     *obs.Histogram
}

// newManager loads any sweeps a previous process left in dir, re-queues
// the unfinished ones, and registers the full metric catalog on reg.
// Runners do not start until start() — recovery therefore cannot block
// on queue capacity (it stages into an unbounded pending list), and a
// coordinator sweep never runs before the daemon knows its own address.
func newManager(dir string, slots int, reg *obs.Registry, backends []string) (*manager, error) {
	if slots < 1 {
		slots = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &manager{
		dir:      dir,
		stats:    &fleet.Stats{},
		drain:    make(chan struct{}),
		backends: backends,
		client:   &http.Client{Timeout: 30 * time.Second},
		slots:    slots,
		queueCap: defaultQueueCap,
		sweeps:   make(map[string]*sweep),
		byLabel:  make(map[string]string),
	}
	m.cond = sync.NewCond(&m.mu)
	m.registerMetrics(reg)
	if err := m.recover(); err != nil {
		return nil, err
	}
	return m, nil
}

// start records the daemon's own base URL (the loopback shard-dispatch
// target and seed-store address) and starts the runner pool. Called once
// the listener is up.
func (m *manager) start(selfBase string) {
	m.selfBase = selfBase
	for i := 0; i < m.slots; i++ {
		m.wg.Add(1)
		go m.runner()
	}
}

// recover scans dir for `<id>.json` sidecars and rebuilds the sweep
// set. Terminal sweeps are kept for the API; anything a dead process
// left queued, running or interrupted goes back on the queue in ID
// order — running/interrupted sweeps resume from their telemetry
// checkpoint when a runner picks them up.
func (m *manager) recover() error {
	names, err := filepath.Glob(filepath.Join(m.dir, "s*.json"))
	if err != nil {
		return err
	}
	sort.Strings(names)
	for _, name := range names {
		raw, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		var st sweepState
		if err := json.Unmarshal(raw, &st); err != nil {
			return fmt.Errorf("sweep sidecar %s: %w", name, err)
		}
		var n int
		if _, err := fmt.Sscanf(st.ID, "s%06d", &n); err != nil || filepath.Base(name) != st.ID+".json" {
			return fmt.Errorf("sweep sidecar %s: id %q does not match filename", name, st.ID)
		}
		if n >= m.nextID {
			m.nextID = n + 1
		}
		sw := &sweep{st: st}
		m.sweeps[st.ID] = sw
		m.order = append(m.order, st.ID)
		if st.Spec.Label != "" {
			m.byLabel[st.Spec.Label] = st.ID
		}
		if !st.terminal() {
			sw.st.Status = statusQueued
			if err := m.persist(sw); err != nil {
				return err
			}
			m.queued++
			// The staging list is unbounded by design: recovery must never
			// deadlock on how many sweeps a dead process left behind.
			m.pending = append(m.pending, sw)
		}
	}
	return nil
}

// submit validates, persists and enqueues a new sweep. A draining
// daemon refuses submissions so the queue is quiescent at exit. The
// queue-capacity check happens BEFORE any state is created: a refused
// submission leaves no sidecar, no registry entry and no gauge increment
// — the HTTP response and the on-disk state always agree.
func (m *manager) submit(spec sweepSpec) (sweepState, error) {
	if err := spec.normalize(); err != nil {
		return sweepState{}, err
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return sweepState{}, errDrained
	}
	if spec.Label != "" {
		if id, ok := m.byLabel[spec.Label]; ok {
			// Idempotent re-dispatch: a coordinator resubmitting a shard
			// (after its own restart, or a lost response) gets the existing
			// sweep back instead of a duplicate simulation.
			sw := m.sweeps[id]
			m.mu.Unlock()
			st := sw.snapshot()
			if !reflect.DeepEqual(st.Spec, spec) {
				return sweepState{}, fmt.Errorf("label %q already names sweep %s with a different spec", spec.Label, id)
			}
			return st, nil
		}
	}
	if m.queued >= m.queueCap {
		// Back-pressure the client rather than block the HTTP handler.
		m.mu.Unlock()
		return sweepState{}, fmt.Errorf("sweep queue full")
	}
	id := fmt.Sprintf("s%06d", m.nextID)
	m.nextID++
	sw := &sweep{st: sweepState{ID: id, Spec: spec, Status: statusQueued}}
	if err := m.persist(sw); err != nil {
		m.mu.Unlock()
		return sweepState{}, err
	}
	m.sweeps[id] = sw
	m.order = append(m.order, id)
	if spec.Label != "" {
		m.byLabel[spec.Label] = id
	}
	m.queued++
	m.pending = append(m.pending, sw)
	m.cond.Signal()
	m.mu.Unlock()
	m.metrics.submitted.Inc()
	return sw.snapshot(), nil
}

// get returns one sweep by ID.
func (m *manager) get(id string) (*sweep, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sw, ok := m.sweeps[id]
	return sw, ok
}

// list returns every sweep's state in submission order.
func (m *manager) list() []sweepState {
	m.mu.Lock()
	order := append([]string(nil), m.order...)
	sweeps := make([]*sweep, len(order))
	for i, id := range order {
		sweeps[i] = m.sweeps[id]
	}
	m.mu.Unlock()
	out := make([]sweepState, len(sweeps))
	for i, sw := range sweeps {
		out[i] = sw.snapshot()
	}
	return out
}

// persist writes the sweep's sidecar atomically (temp + rename), the
// same durability discipline as the telemetry checkpoint: a crash
// leaves either the old state or the new, never a torn file.
func (m *manager) persist(sw *sweep) error {
	raw, err := json.MarshalIndent(&sw.st, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(m.dir, sw.st.ID+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// runner is one slot of the bounded pool: it pulls queued sweeps until
// the daemon drains.
func (m *manager) runner() {
	defer m.wg.Done()
	m.mu.Lock()
	for {
		if m.draining {
			m.mu.Unlock()
			return
		}
		if len(m.pending) > 0 {
			sw := m.pending[0]
			m.pending = m.pending[1:]
			m.mu.Unlock()
			m.run(sw)
			m.mu.Lock()
			continue
		}
		m.cond.Wait()
	}
}

// beginDrain flips the daemon into drain mode: no new submissions, no
// new sweep starts, and every running sweep aborts at its next record
// boundary (checkpoint intact). It returns once all runners have
// exited — after it returns, every sweep is queued, interrupted or
// terminal, and the process may exit.
func (m *manager) beginDrain() {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.drain)
		m.cond.Broadcast()
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// isDraining reports whether the daemon is shutting down — the health
// endpoint's readiness signal, so coordinators stop routing shards here.
func (m *manager) isDraining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// run executes one sweep to a terminal or interrupted state.
func (m *manager) run(sw *sweep) {
	m.mu.Lock()
	if m.draining {
		// Hand the sweep back to the front of the queue instead of
		// dropping it on the floor: it stays "queued" in memory, on disk
		// AND in the queued gauge — a coordinator watching backend gauges
		// during drain sees real load, not phantom drift.
		m.pending = append([]*sweep{sw}, m.pending...)
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	m.setStatus(sw, statusRunning, "")
	m.metrics.started.Inc()

	storePath := filepath.Join(m.dir, sw.st.ID+".wtl")
	spec := sw.snapshot().Spec
	if spec.Shards > 0 {
		m.runSharded(sw, spec, storePath)
		return
	}
	f, meta, err := spec.build(m.stats)
	if err != nil {
		m.finish(sw, statusFailed, err.Error())
		return
	}
	agg := fleet.NewStreamAggregator(f.Span)

	// Create or resume the telemetry store. A checkpointed store means a
	// previous process died (or drained) mid-sweep: adopt its format,
	// verify it describes this spec, replay the committed prefix into the
	// aggregator and start the engine at the checkpoint. A shard sub-sweep
	// with no local store first tries the coordinator's seed-store URL —
	// the blocks already replicated off a lost backend — and falls back to
	// a scratch store (bit-identical, just slower) if the pull fails.
	var store *telemetry.Writer
	if st, serr := os.Stat(storePath); serr == nil && st.Size() > 0 {
		store, err = m.resumeStore(sw, storePath, meta, agg, f)
	} else {
		if spec.SeedStoreURL != "" && m.fetchSeedStore(spec.SeedStoreURL, storePath) {
			store, err = m.resumeStore(sw, storePath, meta, agg, f)
		} else {
			store, err = telemetry.Create(storePath, meta)
		}
	}
	if err != nil {
		m.finish(sw, statusFailed, err.Error())
		return
	}

	// Progress and the telemetry byte/block counters ride the store's
	// commit tick: each callback fires after a block and its checkpoint
	// are durable, so everything the stream reports is crash-safe truth.
	baseBlocks, baseBytes := store.Blocks(), store.Offset()
	firstWearer, _ := meta.Range()
	store.OnCommit = func(blocks, records int, bytes int64) {
		m.metrics.blocksWritten.Add(float64(blocks - baseBlocks))
		m.metrics.bytesWritten.Add(float64(bytes - baseBytes))
		baseBlocks, baseBytes = blocks, bytes
		sw.mu.Lock()
		// records is the writer's absolute next wearer; Records counts the
		// sweep's own committed records, so a shard store subtracts its base.
		sw.st.Blocks, sw.st.Records, sw.st.Bytes = blocks, records-firstWearer, bytes
		sw.publish(false)
		sw.mu.Unlock()
	}

	sink := drainSink{inner: fleet.Tee(store, agg), drain: m.drain}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	perf, err := f.Stream(sink)
	runtime.ReadMemStats(&ms1)

	switch {
	case errors.Is(err, errDrained):
		store.Abort() // keep the checkpoint where the sweep paused
		m.finish(sw, statusInterrupted, "")
		m.metrics.interrupted.Inc()
	case err != nil:
		store.Abort()
		m.finish(sw, statusFailed, err.Error())
	default:
		if cerr := store.Close(); cerr != nil {
			m.finish(sw, statusFailed, cerr.Error())
			return
		}
		m.metrics.sweepSeconds.Observe(time.Since(start).Seconds())
		m.metrics.phase1Seconds.Observe(perf.Phase1.Seconds())
		// TotalAlloc is process-wide, so with concurrent sweeps this
		// attributes neighbors' allocations too — an upper bound, which is
		// the useful direction for an allocation-budget signal.
		m.metrics.allocBytes.Observe(float64(ms1.TotalAlloc - ms0.TotalAlloc))
		sw.mu.Lock()
		sw.st.Fingerprint = agg.Report().Fingerprint()
		sw.st.Records = agg.Wearers()
		sw.mu.Unlock()
		m.finish(sw, statusDone, "")
	}
}

// resumeStore reopens a checkpointed store for sw, guards that it
// describes the same sweep, replays its committed prefix into agg and
// positions f at the checkpoint.
func (m *manager) resumeStore(sw *sweep, path string, meta telemetry.Meta, agg *fleet.StreamAggregator, f *fleet.Fleet) (*telemetry.Writer, error) {
	store, err := telemetry.Resume(path)
	if err != nil {
		return nil, err
	}
	got := store.Meta()
	meta.BlockSize = got.BlockSize // block size is the store's to keep
	meta.Version = telemetry.AdoptVersion(got.Version, meta.Cells, meta.Feedback, meta.Series())
	if got != meta {
		store.Abort()
		return nil, fmt.Errorf("store %s describes a different sweep:\n  store: %+v\n  spec:  %+v", path, got, meta)
	}
	r, err := telemetry.Open(path)
	if err != nil {
		store.Abort()
		return nil, err
	}
	replayed, err := fleet.Replay(r, agg)
	r.Close()
	if err != nil {
		store.Abort()
		return nil, err
	}
	first, _ := got.Range()
	if first+replayed != store.NextWearer() {
		store.Abort()
		return nil, fmt.Errorf("store %s replayed %d records from wearer %d but checkpoint says next is %d",
			path, replayed, first, store.NextWearer())
	}
	f.Start = store.NextWearer()
	m.metrics.resumed.Inc()
	return store, nil
}

// setStatus transitions a sweep and persists + publishes the change.
func (m *manager) setStatus(sw *sweep, status, errMsg string) {
	m.mu.Lock()
	switch status {
	case statusRunning:
		m.queued--
		m.running++
	case statusDone, statusFailed, statusInterrupted:
		m.running--
	}
	m.mu.Unlock()
	sw.mu.Lock()
	sw.st.Status = status
	sw.st.Error = errMsg
	if err := m.persist(sw); err != nil {
		// The in-memory transition stands; losing a sidecar write means a
		// restart replays this sweep from its last durable state, which the
		// resume path is built to absorb. Say so rather than die mid-drain.
		fmt.Fprintf(os.Stderr, "iobfleetd: persisting %s: %v\n", sw.st.ID, err)
	}
	sw.publish(status != statusQueued && status != statusRunning)
	sw.mu.Unlock()
}

// finish moves a sweep to a terminal (or interrupted) state, counting
// the outcome.
func (m *manager) finish(sw *sweep, status, errMsg string) {
	m.setStatus(sw, status, errMsg)
	switch status {
	case statusDone:
		m.metrics.completed.Inc()
	case statusFailed:
		m.metrics.failed.Inc()
	}
}

// drainSink wraps a sweep's sink with the drain check: once the daemon
// drains, the next record returns errDrained and the engine aborts with
// every previously consumed record already a valid committed prefix.
type drainSink struct {
	inner fleet.Sink
	drain <-chan struct{}
}

func (d drainSink) Consume(rec telemetry.Record) error {
	select {
	case <-d.drain:
		return errDrained
	default:
	}
	return d.inner.Consume(rec)
}

// registerMetrics wires the full catalog: daemon lifecycle counters,
// engine-sourced func metrics over the shared fleet.Stats, telemetry
// write counters, per-sweep latency/allocation histograms and Go
// runtime gauges.
func (m *manager) registerMetrics(reg *obs.Registry) {
	m.metrics = &daemonMetrics{
		submitted:   reg.NewCounter("iobfleetd_sweeps_submitted_total", "Sweeps accepted by POST /api/sweeps.", nil),
		started:     reg.NewCounter("iobfleetd_sweeps_started_total", "Sweeps a runner began executing (resumes included).", nil),
		completed:   reg.NewCounter("iobfleetd_sweeps_completed_total", "Sweeps finished with a fingerprint.", nil),
		failed:      reg.NewCounter("iobfleetd_sweeps_failed_total", "Sweeps ended by an error.", nil),
		interrupted: reg.NewCounter("iobfleetd_sweeps_interrupted_total", "Sweeps checkpointed and parked by a drain.", nil),
		resumed:     reg.NewCounter("iobfleetd_sweeps_resumed_total", "Sweeps continued from a telemetry checkpoint.", nil),
		blocksWritten: reg.NewCounter("iobfleetd_telemetry_blocks_written_total",
			"Telemetry blocks committed (checkpoint durable) across all sweeps.", nil),
		bytesWritten: reg.NewCounter("iobfleetd_telemetry_bytes_written_total",
			"Telemetry store bytes committed across all sweeps.", nil),
		shardsDispatched: reg.NewCounter("iobfleetd_shards_dispatched_total",
			"Shard sub-sweeps dispatched to backends (re-dispatches after a backend loss included).", nil),
		shardRetries: reg.NewCounter("iobfleetd_shard_retries_total",
			"Shard dispatch/poll/fetch attempts retried after a backend error or unhealthy probe.", nil),
		shardFetchBytes: reg.NewCounter("iobfleetd_shard_fetch_bytes_total",
			"Shard store bytes replicated between daemons (coordinator pulls and seed-store pulls).", nil),
		sweepSeconds: reg.NewHistogram("iobfleetd_sweep_duration_seconds",
			"Wall-clock duration of completed sweeps.", nil,
			[]float64{0.01, 0.1, 1, 10, 60, 600, 3600}),
		phase1Seconds: reg.NewHistogram("iobfleetd_phase1_duration_seconds",
			"Phase-1 (offered-load gather + equilibrium solve) wall-clock time of completed sweeps.", nil,
			[]float64{0.0001, 0.001, 0.01, 0.1, 1, 10}),
		allocBytes: reg.NewHistogram("iobfleetd_sweep_allocated_bytes",
			"Heap bytes allocated process-wide during each completed sweep (upper bound under concurrency).", nil,
			[]float64{1e5, 1e6, 1e7, 1e8, 1e9, 1e10}),
	}

	// Engine counters: func metrics over the shared fleet.Stats the hot
	// path updates with atomics — zero extra cost per scrape beyond reads.
	st := m.stats
	reg.NewCounterFunc("iobfleetd_wearers_simulated_total",
		"Wearer simulations completed across all sweeps.", nil,
		func() float64 { return float64(st.Wearers.Load()) })
	reg.NewCounterFunc("iobfleetd_kernel_events_total",
		"Discrete simulation events executed across all sweeps.", nil,
		func() float64 { return float64(st.Events.Load()) })
	reg.NewCounterFunc("iobfleetd_phase1_gather_seconds_total",
		"Cumulative phase-1 offered-load gather time.", nil,
		func() float64 { return float64(st.Phase1GatherNS.Load()) / 1e9 })
	reg.NewCounterFunc("iobfleetd_phase1_solve_seconds_total",
		"Cumulative phase-1 equilibrium solve time.", nil,
		func() float64 { return float64(st.Phase1SolveNS.Load()) / 1e9 })
	reg.NewCounterFunc("iobfleetd_equilibrium_iterations_total",
		"Fixed-point iterations summed over all solved cells.", nil,
		func() float64 { return float64(st.EquilibriumIters.Load()) })
	reg.NewCounterFunc("iobfleetd_equilibrium_cells_total",
		"Cells put through the equilibrium solver.", nil,
		func() float64 { return float64(st.EquilibriumCells.Load()) })
	reg.NewGaugeFunc("iobfleetd_reorder_window_depth",
		"Completed wearer reports parked awaiting in-order emission, across running sweeps.", nil,
		func() float64 { return float64(st.WindowDepth.Load()) })

	reg.NewGaugeFunc("iobfleetd_sweeps_queued", "Sweeps waiting for a runner.", nil, func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.queued)
	})
	reg.NewGaugeFunc("iobfleetd_sweeps_running", "Sweeps currently executing.", nil, func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.running)
	})
	reg.NewGaugeFunc("iobfleetd_backends_configured",
		"Shard backends configured via -backends (0 = loopback self-dispatch).", nil,
		func() float64 { return float64(len(m.backends)) })

	reg.NewGaugeFunc("iobfleetd_goroutines", "Goroutines in the daemon process.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.NewGaugeFunc("iobfleetd_heap_alloc_bytes", "Live heap bytes (runtime.MemStats.HeapAlloc).", nil, func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	reg.NewCounterFunc("iobfleetd_gc_cycles_total", "Completed GC cycles.", nil, func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.NumGC)
	})
}
