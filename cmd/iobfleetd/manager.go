package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"time"

	"wiban/internal/fleet"
	"wiban/internal/obs"
	"wiban/internal/telemetry"
)

// errDrained is the sentinel a draining daemon injects into every
// running sweep's sink: the engine aborts at the next record boundary,
// the store keeps its last committed checkpoint, and the sweep parks as
// "interrupted" for the next process to resume.
var errDrained = errors.New("iobfleetd: draining")

// errCancelled is the same mechanism for DELETE /api/sweeps/{id}: the
// running engine aborts at the next record boundary, but the sweep
// parks terminally as "cancelled" instead of re-queueing on restart.
var errCancelled = errors.New("iobfleetd: sweep cancelled")

// cancel() result sentinels, mapped to HTTP codes by the DELETE handler.
var (
	errNoSweep  = errors.New("no such sweep")
	errTerminal = errors.New("sweep already terminal")
)

// Sweep statuses. A sweep moves queued → running → {done, failed,
// interrupted, cancelled}; interrupted and (recovered) running/queued
// sweeps re-enter the queue on restart. done, failed and cancelled are
// terminal — though a cancelled sweep resubmitted under its label is
// revived, which is how a stolen shard's losing copy can be
// re-dispatched later.
const (
	statusQueued      = "queued"
	statusRunning     = "running"
	statusDone        = "done"
	statusFailed      = "failed"
	statusInterrupted = "interrupted"
	statusCancelled   = "cancelled"
)

// sweepState is everything the daemon knows about one sweep — exactly
// what the `<id>.json` sidecar persists and the API serves. Progress
// fields (records, blocks, bytes) track the telemetry store's committed
// prefix, so they are durable truth, not optimistic in-memory counts.
type sweepState struct {
	ID          string    `json:"id"`
	Spec        sweepSpec `json:"spec"`
	Status      string    `json:"status"`
	Records     int       `json:"records"`
	Blocks      int       `json:"blocks"`
	Bytes       int64     `json:"bytes"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	Error       string    `json:"error,omitempty"`
	// CancelRequested survives a crash between the DELETE and the
	// runner's acknowledgement: recovery finalizes such a sweep as
	// cancelled instead of re-queueing work nobody wants anymore.
	CancelRequested bool `json:"cancel_requested,omitempty"`
}

func (st *sweepState) terminal() bool {
	return st.Status == statusDone || st.Status == statusFailed || st.Status == statusCancelled
}

// progressEvent is one NDJSON line on a sweep's progress stream: the
// sweep's state snapshot at a block-commit tick (or status change).
// Final marks the last event a subscriber will receive.
type progressEvent struct {
	sweepState
	WearersTotal int  `json:"wearers_total"`
	Final        bool `json:"final"`
}

// sweep is the in-memory half of a sweepState: the mutable state plus
// its progress subscribers and the cancellation latch. All fields are
// guarded by mu. Lock order is always manager.mu → sweep.mu; no path
// takes them the other way round, which is what makes the runner's
// queued→running claim and cancel()'s queued→cancelled transition
// mutually exclusive instead of racy.
type sweep struct {
	mu        sync.Mutex
	st        sweepState
	subs      map[chan progressEvent]struct{}
	cancel    chan struct{} // closed when cancellation is requested
	cancelled bool          // whether cancel has been closed (close-once latch)
}

func newSweep(st sweepState) *sweep {
	return &sweep{st: st, cancel: make(chan struct{})}
}

// markCancelled trips the cancellation latch exactly once. Caller holds mu.
func (sw *sweep) markCancelled() {
	if !sw.cancelled {
		sw.cancelled = true
		close(sw.cancel)
	}
}

func (sw *sweep) cancelRequested() bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.cancelled
}

// cancelChan returns the current cancellation latch. Revival swaps the
// channel, so callers snapshot it once at the start of a run.
func (sw *sweep) cancelChan() <-chan struct{} {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.cancel
}

func (sw *sweep) snapshot() sweepState {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.st
}

// subscribe registers a progress listener. The current state arrives
// immediately as the first event, so a subscriber never waits for the
// next commit tick to learn where the sweep stands; if the sweep is
// already terminal that first event is also the last.
func (sw *sweep) subscribe() chan progressEvent {
	ch := make(chan progressEvent, 16)
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.subs == nil {
		sw.subs = make(map[chan progressEvent]struct{})
	}
	sw.subs[ch] = struct{}{}
	ch <- sw.event(sw.st.terminal() || sw.st.Status == statusInterrupted)
	return ch
}

func (sw *sweep) unsubscribe(ch chan progressEvent) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	delete(sw.subs, ch)
}

// event builds the progress event for the current state. Caller holds mu.
func (sw *sweep) event(final bool) progressEvent {
	return progressEvent{sweepState: sw.st, WearersTotal: sw.st.Spec.Wearers, Final: final}
}

// publish fans the current state out to every subscriber. Sends are
// lossy for intermediate events — a slow reader's oldest buffered event
// is dropped to make room — but never for the event itself: after the
// drop there is always room, so the final event always lands. Caller
// holds mu (the publisher is single-threaded per sweep: its runner).
func (sw *sweep) publish(final bool) {
	ev := sw.event(final)
	for ch := range sw.subs {
		select {
		case ch <- ev:
		default:
			select {
			case <-ch: // shed the oldest event; the snapshot supersedes it
			default:
			}
			ch <- ev
		}
	}
}

// defaultQueueCap bounds how many sweeps may wait for a runner before
// submissions are refused. Recovery is exempt: a restart re-queues every
// non-terminal sidecar however many there are, so a daemon can always
// pick its own state back up.
const defaultQueueCap = 4096

// manager owns the sweep set: submissions, the bounded runner pool, the
// sidecar persistence, crash recovery, the drain protocol and — for
// sweeps with a shards field — the multi-backend coordinator.
type manager struct {
	dir     string
	stats   *fleet.Stats // shared by every sweep; counters accumulate daemon-wide
	metrics *daemonMetrics

	// instance is this process's nonce, served as X-Iobfleetd-Instance on
	// sweep-state responses. A backend SIGKILLed and restarted inside one
	// poll interval is otherwise invisible to its coordinator — every
	// request before and after the blink succeeds — but the blink rolls
	// the nonce, so supervisors detect the silent restart and re-dispatch
	// (label-idempotent, hence safe even when the recovered sweep is
	// already running again).
	instance string

	drain chan struct{} // closed when draining; never reopened
	wg    sync.WaitGroup

	backends []string    // static -backends entries (seed the membership; kept for the configured gauge)
	members  *membership // live fleet table shard dispatch selects from
	selfBase string      // this daemon's own base URL, set by start() after listen
	client   *http.Client
	slots    int

	// stealAfter is the straggler deadline: a dispatched shard whose
	// committed progress stalls this long gets a speculative second copy
	// on another live backend (0 disables stealing). retain bounds the
	// terminal sweeps kept in -data (0 keeps everything).
	stealAfter time.Duration
	retain     int

	mu       sync.Mutex
	cond     *sync.Cond // wakes runners when pending gains work or drain begins
	pending  []*sweep   // FIFO of sweeps awaiting a runner (unbounded; queueCap gates submissions only)
	draining bool
	queueCap int
	sweeps   map[string]*sweep
	order    []string          // submission order (ID order)
	byLabel  map[string]string // shard label → sweep ID (idempotent re-dispatch)
	nextID   int
	queued   int
	running  int
}

// daemonMetrics is the daemon's own event-driven metric set. The
// engine-sourced series (wearers, events, phase-1 time, equilibrium
// iterations, window depth) are registered as func metrics over the
// shared fleet.Stats and need no fields here.
type daemonMetrics struct {
	submitted, started, completed, failed, interrupted, resumed *obs.Counter
	cancelled, retired                                          *obs.Counter
	blocksWritten, bytesWritten                                 *obs.Counter
	shardsDispatched, shardRetries, shardFetchBytes             *obs.Counter
	shardsStolen                                                *obs.Counter
	sweepSeconds, phase1Seconds, allocBytes                     *obs.Histogram
}

// newManager loads any sweeps a previous process left in dir, re-queues
// the unfinished ones, and registers the full metric catalog on reg.
// Runners do not start until start() — recovery therefore cannot block
// on queue capacity (it stages into an unbounded pending list), and a
// coordinator sweep never runs before the daemon knows its own address.
func newManager(dir string, slots int, reg *obs.Registry, backends []string) (*manager, error) {
	if slots < 1 {
		slots = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &manager{
		dir:      dir,
		stats:    &fleet.Stats{},
		instance: fmt.Sprintf("%d-%016x", os.Getpid(), rand.Uint64()),
		drain:    make(chan struct{}),
		backends: backends,
		client:   &http.Client{Timeout: 30 * time.Second},
		slots:    slots,
		queueCap: defaultQueueCap,
		sweeps:   make(map[string]*sweep),
		byLabel:  make(map[string]string),
	}
	members, err := newMembership(filepath.Join(dir, "backends.json"), backends)
	if err != nil {
		return nil, err
	}
	m.members = members
	m.cond = sync.NewCond(&m.mu)
	m.registerMetrics(reg)
	if err := m.recover(); err != nil {
		return nil, err
	}
	return m, nil
}

// start records the daemon's own base URL (the loopback shard-dispatch
// target and seed-store address) and starts the runner pool. Called once
// the listener is up.
func (m *manager) start(selfBase string) {
	m.selfBase = selfBase
	for i := 0; i < m.slots; i++ {
		m.wg.Add(1)
		go m.runner()
	}
}

// recover scans dir for `<id>.json` sidecars and rebuilds the sweep
// set. Terminal sweeps are kept for the API; anything a dead process
// left queued, running or interrupted goes back on the queue in ID
// order — running/interrupted sweeps resume from their telemetry
// checkpoint when a runner picks them up.
func (m *manager) recover() error {
	names, err := filepath.Glob(filepath.Join(m.dir, "s*.json"))
	if err != nil {
		return err
	}
	sort.Strings(names)
	for _, name := range names {
		raw, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		var st sweepState
		if err := json.Unmarshal(raw, &st); err != nil {
			return fmt.Errorf("sweep sidecar %s: %w", name, err)
		}
		var n int
		if _, err := fmt.Sscanf(st.ID, "s%06d", &n); err != nil || filepath.Base(name) != st.ID+".json" {
			return fmt.Errorf("sweep sidecar %s: id %q does not match filename", name, st.ID)
		}
		if n >= m.nextID {
			m.nextID = n + 1
		}
		sw := newSweep(st)
		m.sweeps[st.ID] = sw
		m.order = append(m.order, st.ID)
		if st.Spec.Label != "" {
			m.byLabel[st.Spec.Label] = st.ID
		}
		if !st.terminal() {
			if st.CancelRequested {
				// The process died between the DELETE and the runner's
				// acknowledgement: finalize the cancellation instead of
				// re-queueing work nobody wants. The checkpointed store stays
				// for retention to collect.
				sw.st.Status = statusCancelled
				sw.markCancelled()
				if err := m.persist(sw); err != nil {
					return err
				}
				m.metrics.cancelled.Inc()
				continue
			}
			sw.st.Status = statusQueued
			if err := m.persist(sw); err != nil {
				return err
			}
			m.queued++
			// The staging list is unbounded by design: recovery must never
			// deadlock on how many sweeps a dead process left behind.
			m.pending = append(m.pending, sw)
		}
	}
	return nil
}

// submit validates, persists and enqueues a new sweep. A draining
// daemon refuses submissions so the queue is quiescent at exit. The
// queue-capacity check happens BEFORE any state is created: a refused
// submission leaves no sidecar, no registry entry and no gauge increment
// — the HTTP response and the on-disk state always agree.
func (m *manager) submit(spec sweepSpec) (sweepState, error) {
	if err := spec.normalize(); err != nil {
		return sweepState{}, err
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return sweepState{}, errDrained
	}
	if spec.Label != "" {
		if id, ok := m.byLabel[spec.Label]; ok {
			// Idempotent re-dispatch: a coordinator resubmitting a shard
			// (after its own restart, or a lost response) gets the existing
			// sweep back instead of a duplicate simulation.
			sw := m.sweeps[id]
			sw.mu.Lock()
			if !reflect.DeepEqual(sw.st.Spec, spec) {
				sw.mu.Unlock()
				m.mu.Unlock()
				return sweepState{}, fmt.Errorf("label %q already names sweep %s with a different spec", spec.Label, id)
			}
			if sw.st.Status == statusCancelled {
				// Revival: the steal protocol cancels a losing shard copy, but
				// a coordinator re-dispatching the same label later (its winner
				// died too) must be able to run it again — from the checkpoint
				// the cancellation parked.
				if m.queued >= m.queueCap {
					sw.mu.Unlock()
					m.mu.Unlock()
					return sweepState{}, fmt.Errorf("sweep queue full")
				}
				sw.st.Status = statusQueued
				sw.st.CancelRequested = false
				sw.st.Error = ""
				sw.cancelled = false
				sw.cancel = make(chan struct{})
				if err := m.persist(sw); err != nil {
					sw.mu.Unlock()
					m.mu.Unlock()
					return sweepState{}, err
				}
				sw.publish(false)
				m.queued++
				m.pending = append(m.pending, sw)
				m.cond.Signal()
				st := sw.st
				sw.mu.Unlock()
				m.mu.Unlock()
				m.metrics.submitted.Inc()
				return st, nil
			}
			st := sw.st
			sw.mu.Unlock()
			m.mu.Unlock()
			return st, nil
		}
	}
	if m.queued >= m.queueCap {
		// Back-pressure the client rather than block the HTTP handler.
		m.mu.Unlock()
		return sweepState{}, fmt.Errorf("sweep queue full")
	}
	id := fmt.Sprintf("s%06d", m.nextID)
	m.nextID++
	sw := newSweep(sweepState{ID: id, Spec: spec, Status: statusQueued})
	if err := m.persist(sw); err != nil {
		m.mu.Unlock()
		return sweepState{}, err
	}
	m.sweeps[id] = sw
	m.order = append(m.order, id)
	if spec.Label != "" {
		m.byLabel[spec.Label] = id
	}
	m.queued++
	m.pending = append(m.pending, sw)
	m.cond.Signal()
	m.mu.Unlock()
	m.metrics.submitted.Inc()
	return sw.snapshot(), nil
}

// get returns one sweep by ID.
func (m *manager) get(id string) (*sweep, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sw, ok := m.sweeps[id]
	return sw, ok
}

// list returns every sweep's state in submission order.
func (m *manager) list() []sweepState {
	m.mu.Lock()
	order := append([]string(nil), m.order...)
	sweeps := make([]*sweep, len(order))
	for i, id := range order {
		sweeps[i] = m.sweeps[id]
	}
	m.mu.Unlock()
	out := make([]sweepState, len(sweeps))
	for i, sw := range sweeps {
		out[i] = sw.snapshot()
	}
	return out
}

// persist writes the sweep's sidecar atomically (temp + rename), the
// same durability discipline as the telemetry checkpoint: a crash
// leaves either the old state or the new, never a torn file.
func (m *manager) persist(sw *sweep) error {
	raw, err := json.MarshalIndent(&sw.st, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(m.dir, sw.st.ID+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// runner is one slot of the bounded pool: it pulls queued sweeps until
// the daemon drains.
func (m *manager) runner() {
	defer m.wg.Done()
	m.mu.Lock()
	for {
		if m.draining {
			m.mu.Unlock()
			return
		}
		if len(m.pending) > 0 {
			sw := m.pending[0]
			m.pending = m.pending[1:]
			m.mu.Unlock()
			m.run(sw)
			m.mu.Lock()
			continue
		}
		m.cond.Wait()
	}
}

// beginDrain flips the daemon into drain mode: no new submissions, no
// new sweep starts, and every running sweep aborts at its next record
// boundary (checkpoint intact). It returns once all runners have
// exited — after it returns, every sweep is queued, interrupted or
// terminal, and the process may exit.
func (m *manager) beginDrain() {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.drain)
		m.cond.Broadcast()
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// isDraining reports whether the daemon is shutting down — the health
// endpoint's readiness signal, so coordinators stop routing shards here.
func (m *manager) isDraining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// run executes one sweep to a terminal or interrupted state.
func (m *manager) run(sw *sweep) {
	m.mu.Lock()
	if m.draining {
		// Hand the sweep back to the front of the queue instead of
		// dropping it on the floor: it stays "queued" in memory, on disk
		// AND in the queued gauge — a coordinator watching backend gauges
		// during drain sees real load, not phantom drift.
		m.pending = append([]*sweep{sw}, m.pending...)
		m.mu.Unlock()
		return
	}
	// The queued→running claim happens under both locks, mirroring
	// cancel()'s queued→cancelled transition: exactly one of the two
	// wins, and a sweep cancelled between enqueue and claim is simply
	// skipped — cancel() already settled its state and gauges.
	sw.mu.Lock()
	if sw.st.Status != statusQueued {
		sw.mu.Unlock()
		m.mu.Unlock()
		return
	}
	m.queued--
	m.running++
	sw.st.Status = statusRunning
	sw.st.Error = ""
	if err := m.persist(sw); err != nil {
		fmt.Fprintf(os.Stderr, "iobfleetd: persisting %s: %v\n", sw.st.ID, err)
	}
	sw.publish(false)
	cancel := sw.cancel
	sw.mu.Unlock()
	m.mu.Unlock()
	m.metrics.started.Inc()

	storePath := filepath.Join(m.dir, sw.st.ID+".wtl")
	spec := sw.snapshot().Spec
	if spec.Shards > 0 {
		m.runSharded(sw, spec, storePath)
		return
	}
	f, meta, err := spec.build(m.stats)
	if err != nil {
		m.finish(sw, statusFailed, err.Error())
		return
	}
	agg := fleet.NewStreamAggregator(f.Span)

	// Create or resume the telemetry store. A checkpointed store means a
	// previous process died (or drained) mid-sweep: adopt its format,
	// verify it describes this spec, replay the committed prefix into the
	// aggregator and start the engine at the checkpoint. A shard sub-sweep
	// with no local store first tries the coordinator's seed-store URL —
	// the blocks already replicated off a lost backend — and falls back to
	// a scratch store (bit-identical, just slower) if the pull fails.
	var store *telemetry.Writer
	if st, serr := os.Stat(storePath); serr == nil && st.Size() > 0 {
		store, err = m.resumeStore(sw, storePath, meta, agg, f)
	} else {
		if spec.SeedStoreURL != "" && m.fetchSeedStore(spec.SeedStoreURL, storePath) {
			store, err = m.resumeStore(sw, storePath, meta, agg, f)
		} else {
			store, err = telemetry.Create(storePath, meta)
		}
	}
	if err != nil {
		m.finish(sw, statusFailed, err.Error())
		return
	}

	// Progress and the telemetry byte/block counters ride the store's
	// commit tick: each callback fires after a block and its checkpoint
	// are durable, so everything the stream reports is crash-safe truth.
	baseBlocks, baseBytes := store.Blocks(), store.Offset()
	firstWearer, _ := meta.Range()
	store.OnCommit = func(blocks, records int, bytes int64) {
		m.metrics.blocksWritten.Add(float64(blocks - baseBlocks))
		m.metrics.bytesWritten.Add(float64(bytes - baseBytes))
		baseBlocks, baseBytes = blocks, bytes
		sw.mu.Lock()
		// records is the writer's absolute next wearer; Records counts the
		// sweep's own committed records, so a shard store subtracts its base.
		sw.st.Blocks, sw.st.Records, sw.st.Bytes = blocks, records-firstWearer, bytes
		sw.publish(false)
		sw.mu.Unlock()
	}

	sink := drainSink{inner: fleet.Tee(store, agg), drain: m.drain, cancel: cancel}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	perf, err := f.Stream(sink)
	runtime.ReadMemStats(&ms1)

	switch {
	case errors.Is(err, errCancelled):
		store.Abort() // the checkpoint stays; retention collects it later
		m.finish(sw, statusCancelled, "")
	case errors.Is(err, errDrained):
		store.Abort() // keep the checkpoint where the sweep paused
		m.finish(sw, statusInterrupted, "")
	case err != nil:
		store.Abort()
		m.finish(sw, statusFailed, err.Error())
	default:
		if cerr := store.Close(); cerr != nil {
			m.finish(sw, statusFailed, cerr.Error())
			return
		}
		m.metrics.sweepSeconds.Observe(time.Since(start).Seconds())
		m.metrics.phase1Seconds.Observe(perf.Phase1.Seconds())
		// TotalAlloc is process-wide, so with concurrent sweeps this
		// attributes neighbors' allocations too — an upper bound, which is
		// the useful direction for an allocation-budget signal.
		m.metrics.allocBytes.Observe(float64(ms1.TotalAlloc - ms0.TotalAlloc))
		sw.mu.Lock()
		sw.st.Fingerprint = agg.Report().Fingerprint()
		sw.st.Records = agg.Wearers()
		sw.mu.Unlock()
		m.finish(sw, statusDone, "")
	}
}

// resumeStore reopens a checkpointed store for sw, guards that it
// describes the same sweep, replays its committed prefix into agg and
// positions f at the checkpoint.
func (m *manager) resumeStore(sw *sweep, path string, meta telemetry.Meta, agg *fleet.StreamAggregator, f *fleet.Fleet) (*telemetry.Writer, error) {
	store, err := telemetry.Resume(path)
	if err != nil {
		return nil, err
	}
	got := store.Meta()
	meta.BlockSize = got.BlockSize // block size is the store's to keep
	meta.Version = telemetry.AdoptVersion(got.Version, meta.Cells, meta.Feedback, meta.Series())
	if got != meta {
		store.Abort()
		return nil, fmt.Errorf("store %s describes a different sweep:\n  store: %+v\n  spec:  %+v", path, got, meta)
	}
	r, err := telemetry.Open(path)
	if err != nil {
		store.Abort()
		return nil, err
	}
	replayed, err := fleet.Replay(r, agg)
	r.Close()
	if err != nil {
		store.Abort()
		return nil, err
	}
	first, _ := got.Range()
	if first+replayed != store.NextWearer() {
		store.Abort()
		return nil, fmt.Errorf("store %s replayed %d records from wearer %d but checkpoint says next is %d",
			path, replayed, first, store.NextWearer())
	}
	f.Start = store.NextWearer()
	m.metrics.resumed.Inc()
	return store, nil
}

// setStatus moves a running sweep to its resting state and persists +
// publishes the change. (The queued→running claim lives inline in run(),
// under both locks, so it can race-check against cancellation.)
func (m *manager) setStatus(sw *sweep, status, errMsg string) {
	m.mu.Lock()
	switch status {
	case statusDone, statusFailed, statusInterrupted, statusCancelled:
		m.running--
	}
	m.mu.Unlock()
	sw.mu.Lock()
	sw.st.Status = status
	sw.st.Error = errMsg
	if err := m.persist(sw); err != nil {
		// The in-memory transition stands; losing a sidecar write means a
		// restart replays this sweep from its last durable state, which the
		// resume path is built to absorb. Say so rather than die mid-drain.
		fmt.Fprintf(os.Stderr, "iobfleetd: persisting %s: %v\n", sw.st.ID, err)
	}
	sw.publish(status != statusQueued && status != statusRunning)
	sw.mu.Unlock()
}

// finish moves a running sweep to a terminal (or interrupted) state,
// counting the outcome, and returns the status that actually stuck: a
// drain that lands on a sweep whose cancellation was already requested
// parks it "cancelled", not "interrupted" — a restart must not revive
// work the DELETE already disowned.
func (m *manager) finish(sw *sweep, status, errMsg string) string {
	if status == statusInterrupted && sw.cancelRequested() {
		status = statusCancelled
	}
	m.setStatus(sw, status, errMsg)
	switch status {
	case statusDone:
		m.metrics.completed.Inc()
	case statusFailed:
		m.metrics.failed.Inc()
	case statusInterrupted:
		m.metrics.interrupted.Inc()
	case statusCancelled:
		m.metrics.cancelled.Inc()
	}
	if status == statusDone || status == statusCancelled {
		m.pruneRetained()
	}
	return status
}

// cancel implements DELETE /api/sweeps/{id}. A queued sweep unqueues on
// the spot; a running sweep has its latch tripped and the runner
// checkpoints-and-parks it cancelled at the next record boundary; an
// interrupted sweep is finalized so a restart won't resurrect it. done
// and failed are already settled (errTerminal); cancelling a cancelled
// sweep is idempotent. Gauge accounting happens here for the states a
// runner doesn't own (queued, interrupted) and in the runner's own
// transition for running — never both.
func (m *manager) cancel(id string) (sweepState, error) {
	m.mu.Lock()
	sw, ok := m.sweeps[id]
	if !ok {
		m.mu.Unlock()
		return sweepState{}, errNoSweep
	}
	sw.mu.Lock()
	prune := false
	switch sw.st.Status {
	case statusDone, statusFailed:
		st := sw.st
		sw.mu.Unlock()
		m.mu.Unlock()
		return st, errTerminal
	case statusCancelled:
		// idempotent: report the settled state again
	case statusQueued:
		for i, p := range m.pending {
			if p == sw {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
		m.queued--
		sw.st.Status = statusCancelled
		sw.st.CancelRequested = true
		sw.markCancelled()
		if err := m.persist(sw); err != nil {
			fmt.Fprintf(os.Stderr, "iobfleetd: persisting %s: %v\n", sw.st.ID, err)
		}
		sw.publish(true)
		m.metrics.cancelled.Inc()
		prune = true
	case statusInterrupted:
		sw.st.Status = statusCancelled
		sw.st.CancelRequested = true
		sw.markCancelled()
		if err := m.persist(sw); err != nil {
			fmt.Fprintf(os.Stderr, "iobfleetd: persisting %s: %v\n", sw.st.ID, err)
		}
		sw.publish(true)
		m.metrics.cancelled.Inc()
		prune = true
	case statusRunning:
		// Trip the latch and persist the request; the runner owns the
		// running gauge and completes the transition at the next record
		// boundary (or the shard supervisors cancel their sub-sweeps).
		sw.st.CancelRequested = true
		sw.markCancelled()
		if err := m.persist(sw); err != nil {
			fmt.Fprintf(os.Stderr, "iobfleetd: persisting %s: %v\n", sw.st.ID, err)
		}
	}
	st := sw.st
	sw.mu.Unlock()
	m.mu.Unlock()
	if prune {
		m.pruneRetained()
	}
	return st, nil
}

// pruneRetained enforces -retain: beyond the newest N terminal-and-done
// sweeps (done or cancelled — failed sweeps are kept as evidence), the
// oldest are dropped from the registry and their store, checkpoint,
// shard partials and sidecar unlinked. Non-terminal sweeps are never
// touched: queued/running/interrupted state is resumable and GC must
// not eat it.
func (m *manager) pruneRetained() {
	if m.retain <= 0 {
		return
	}
	m.mu.Lock()
	kept := 0
	var victims []*sweep
	for i := len(m.order) - 1; i >= 0; i-- {
		sw := m.sweeps[m.order[i]]
		sw.mu.Lock()
		st := sw.st.Status
		sw.mu.Unlock()
		if st != statusDone && st != statusCancelled {
			continue
		}
		if kept++; kept > m.retain {
			victims = append(victims, sw)
		}
	}
	for _, sw := range victims {
		sw.mu.Lock()
		id, label := sw.st.ID, sw.st.Spec.Label
		sw.mu.Unlock()
		delete(m.sweeps, id)
		if label != "" && m.byLabel[label] == id {
			delete(m.byLabel, label)
		}
		for i, oid := range m.order {
			if oid == id {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
	m.mu.Unlock()
	for _, sw := range victims {
		id := sw.st.ID
		store := filepath.Join(m.dir, id+".wtl")
		os.Remove(filepath.Join(m.dir, id+".json"))
		os.Remove(store)
		os.Remove(telemetry.CheckpointPath(store))
		if partials, err := filepath.Glob(filepath.Join(m.dir, id+".shard*")); err == nil {
			for _, p := range partials {
				os.Remove(p)
			}
		}
		m.metrics.retired.Inc()
	}
}

// drainSink wraps a sweep's sink with the drain and cancel checks: once
// either trips, the next record returns the matching sentinel and the
// engine aborts with every previously consumed record already a valid
// committed prefix. Cancel is checked first — a sweep cancelled during
// a drain parks terminally, not resumably.
type drainSink struct {
	inner  fleet.Sink
	drain  <-chan struct{}
	cancel <-chan struct{}
}

func (d drainSink) Consume(rec telemetry.Record) error {
	// Two separate non-blocking checks, not one select: with both
	// channels tripped a single select would pick at random, and the
	// cancel-first priority is what the parked status depends on.
	select {
	case <-d.cancel:
		return errCancelled
	default:
	}
	select {
	case <-d.drain:
		return errDrained
	default:
	}
	return d.inner.Consume(rec)
}

// registerMetrics wires the full catalog: daemon lifecycle counters,
// engine-sourced func metrics over the shared fleet.Stats, telemetry
// write counters, per-sweep latency/allocation histograms and Go
// runtime gauges.
func (m *manager) registerMetrics(reg *obs.Registry) {
	m.metrics = &daemonMetrics{
		submitted:   reg.NewCounter("iobfleetd_sweeps_submitted_total", "Sweeps accepted by POST /api/sweeps.", nil),
		started:     reg.NewCounter("iobfleetd_sweeps_started_total", "Sweeps a runner began executing (resumes included).", nil),
		completed:   reg.NewCounter("iobfleetd_sweeps_completed_total", "Sweeps finished with a fingerprint.", nil),
		failed:      reg.NewCounter("iobfleetd_sweeps_failed_total", "Sweeps ended by an error.", nil),
		interrupted: reg.NewCounter("iobfleetd_sweeps_interrupted_total", "Sweeps checkpointed and parked by a drain.", nil),
		resumed:     reg.NewCounter("iobfleetd_sweeps_resumed_total", "Sweeps continued from a telemetry checkpoint.", nil),
		cancelled:   reg.NewCounter("iobfleetd_sweeps_cancelled_total", "Sweeps cancelled by DELETE (or finalized as cancelled on recovery).", nil),
		retired: reg.NewCounter("iobfleetd_sweeps_retired_total",
			"Terminal sweeps garbage-collected by -retain (store, checkpoint and sidecar unlinked).", nil),
		blocksWritten: reg.NewCounter("iobfleetd_telemetry_blocks_written_total",
			"Telemetry blocks committed (checkpoint durable) across all sweeps.", nil),
		bytesWritten: reg.NewCounter("iobfleetd_telemetry_bytes_written_total",
			"Telemetry store bytes committed across all sweeps.", nil),
		shardsDispatched: reg.NewCounter("iobfleetd_shards_dispatched_total",
			"Shard sub-sweeps dispatched to backends (re-dispatches after a backend loss included).", nil),
		shardRetries: reg.NewCounter("iobfleetd_shard_retries_total",
			"Shard dispatch/poll/fetch attempts retried after a backend error or unhealthy probe.", nil),
		shardFetchBytes: reg.NewCounter("iobfleetd_shard_fetch_bytes_total",
			"Shard store bytes replicated between daemons (coordinator pulls and seed-store pulls).", nil),
		shardsStolen: reg.NewCounter("iobfleetd_shards_stolen_total",
			"Speculative shard copies dispatched after a straggler stalled past -steal-after.", nil),
		sweepSeconds: reg.NewHistogram("iobfleetd_sweep_duration_seconds",
			"Wall-clock duration of completed sweeps.", nil,
			[]float64{0.01, 0.1, 1, 10, 60, 600, 3600}),
		phase1Seconds: reg.NewHistogram("iobfleetd_phase1_duration_seconds",
			"Phase-1 (offered-load gather + equilibrium solve) wall-clock time of completed sweeps.", nil,
			[]float64{0.0001, 0.001, 0.01, 0.1, 1, 10}),
		allocBytes: reg.NewHistogram("iobfleetd_sweep_allocated_bytes",
			"Heap bytes allocated process-wide during each completed sweep (upper bound under concurrency).", nil,
			[]float64{1e5, 1e6, 1e7, 1e8, 1e9, 1e10}),
	}

	// Engine counters: func metrics over the shared fleet.Stats the hot
	// path updates with atomics — zero extra cost per scrape beyond reads.
	st := m.stats
	reg.NewCounterFunc("iobfleetd_wearers_simulated_total",
		"Wearer simulations completed across all sweeps.", nil,
		func() float64 { return float64(st.Wearers.Load()) })
	reg.NewCounterFunc("iobfleetd_kernel_events_total",
		"Discrete simulation events executed across all sweeps.", nil,
		func() float64 { return float64(st.Events.Load()) })
	reg.NewCounterFunc("iobfleetd_phase1_gather_seconds_total",
		"Cumulative phase-1 offered-load gather time.", nil,
		func() float64 { return float64(st.Phase1GatherNS.Load()) / 1e9 })
	reg.NewCounterFunc("iobfleetd_phase1_solve_seconds_total",
		"Cumulative phase-1 equilibrium solve time.", nil,
		func() float64 { return float64(st.Phase1SolveNS.Load()) / 1e9 })
	reg.NewCounterFunc("iobfleetd_equilibrium_iterations_total",
		"Fixed-point iterations summed over all solved cells.", nil,
		func() float64 { return float64(st.EquilibriumIters.Load()) })
	reg.NewCounterFunc("iobfleetd_equilibrium_cells_total",
		"Cells put through the equilibrium solver.", nil,
		func() float64 { return float64(st.EquilibriumCells.Load()) })
	reg.NewGaugeFunc("iobfleetd_reorder_window_depth",
		"Completed wearer reports parked awaiting in-order emission, across running sweeps.", nil,
		func() float64 { return float64(st.WindowDepth.Load()) })

	reg.NewGaugeFunc("iobfleetd_sweeps_queued", "Sweeps waiting for a runner.", nil, func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.queued)
	})
	reg.NewGaugeFunc("iobfleetd_sweeps_running", "Sweeps currently executing.", nil, func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.running)
	})
	reg.NewGaugeFunc("iobfleetd_backends_configured",
		"Shard backends configured via -backends (0 = loopback self-dispatch).", nil,
		func() float64 { return float64(len(m.backends)) })

	// Membership: registration/expiry counters are wired into the table
	// (which predates this call in newManager); liveness is derived per
	// scrape, so the gauges are funcs over one locked pass.
	m.members.registrations = reg.NewCounter("iobfleetd_backend_registrations_total",
		"Backends added to the membership table (first registration or revival after expiry).", nil)
	m.members.expirations = reg.NewCounter("iobfleetd_backends_expired_total",
		"Dynamic backends whose heartbeats fell silent past -expire.", nil)
	reg.NewGaugeFunc("iobfleetd_backends_registered",
		"Membership table entries (static and dynamic, live or expired).", nil,
		func() float64 { t, _, _ := m.members.counts(); return float64(t) })
	reg.NewGaugeFunc("iobfleetd_backends_live",
		"Membership entries currently selectable for shard dispatch.", nil,
		func() float64 { _, l, _ := m.members.counts(); return float64(l) })

	reg.NewGaugeFunc("iobfleetd_goroutines", "Goroutines in the daemon process.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.NewGaugeFunc("iobfleetd_heap_alloc_bytes", "Live heap bytes (runtime.MemStats.HeapAlloc).", nil, func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	reg.NewCounterFunc("iobfleetd_gc_cycles_total", "Completed GC cycles.", nil, func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.NumGC)
	})
}
