package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wiban/internal/obs"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:9370", "HTTP listen address (host:port; port 0 picks a free port)")
		data     = flag.String("data", "iobfleetd.data", "directory for telemetry stores and sweep state sidecars")
		sweeps   = flag.Int("sweeps", 2, "sweeps running concurrently (a coordinator sweep occupies one slot while its shards run)")
		backends = flag.String("backends", "", "comma-separated base URLs sharded sweeps dispatch to (empty = this daemon runs its own shards)")
	)
	flag.Parse()
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "iobfleetd: "+format+"\n", args...)
		os.Exit(1)
	}
	var backendList []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimRight(strings.TrimSpace(b), "/"); b != "" {
			backendList = append(backendList, b)
		}
	}

	reg := obs.NewRegistry()
	m, err := newManager(*data, *sweeps, reg, backendList)
	if err != nil {
		fail("%v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail("%v", err)
	}
	// The actual address, not the flag: with -listen :0 this line is how
	// scripts (and the exec-level tests) learn the port. Runners start only
	// now — a recovered coordinator sweep needs the daemon's own address
	// (loopback dispatch, seed-store URLs) before it may run.
	m.start("http://" + ln.Addr().String())
	fmt.Printf("iobfleetd: listening on http://%s (data %s, %d sweep slots)\n",
		ln.Addr(), *data, *sweeps)

	srv := &http.Server{Handler: newMux(m, reg)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fail("%v", err)
	case s := <-sig:
		fmt.Printf("iobfleetd: %v: draining (running sweeps checkpoint and park)\n", s)
	}

	// Drain before shutting down HTTP: running sweeps checkpoint and
	// publish their final "interrupted" progress event while clients can
	// still hear it. Then give open connections a moment and cut them —
	// a progress stream on a queued sweep would otherwise hold Shutdown
	// open forever.
	m.beginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
	fmt.Println("iobfleetd: drained; restart with the same -data to resume")
}
