package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"wiban/internal/obs"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:9370", "HTTP listen address (host:port; port 0 picks a free port)")
		data     = flag.String("data", "iobfleetd.data", "directory for telemetry stores and sweep state sidecars")
		sweeps   = flag.Int("sweeps", 2, "sweeps running concurrently (a coordinator sweep occupies one slot while its shards run)")
		backends = flag.String("backends", "", "comma-separated base URLs sharded sweeps always dispatch to (static membership; dynamic backends register over POST /api/backends)")
		register = flag.String("register", "", "comma-separated coordinator base URLs this daemon registers with and heartbeats as a backend")
		hbEvery  = flag.Duration("heartbeat", 2*time.Second, "interval between registration heartbeats to each -register coordinator")
		expire   = flag.Duration("expire", 10*time.Second, "silence after which a dynamically registered backend stops being selected for shard dispatch")
		steal    = flag.Duration("steal-after", 15*time.Second, "committed-progress stall after which a shard is speculatively re-dispatched to another live backend (0 disables work-stealing)")
		retain   = flag.Int("retain", 0, "terminal (done/cancelled) sweeps to keep in -data; older stores and sidecars are garbage-collected (0 keeps everything)")
	)
	flag.Parse()
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "iobfleetd: "+format+"\n", args...)
		os.Exit(1)
	}
	var backendList []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimRight(strings.TrimSpace(b), "/"); b != "" {
			backendList = append(backendList, b)
		}
	}

	var coordinators []string
	for _, c := range strings.Split(*register, ",") {
		if c = strings.TrimRight(strings.TrimSpace(c), "/"); c != "" {
			coordinators = append(coordinators, c)
		}
	}

	reg := obs.NewRegistry()
	m, err := newManager(*data, *sweeps, reg, backendList)
	if err != nil {
		fail("%v", err)
	}
	m.members.ttl = *expire
	m.stealAfter = *steal
	m.retain = *retain
	// Apply retention to whatever a previous process left behind before
	// serving it: a restarted daemon with a tighter -retain trims on boot.
	m.pruneRetained()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail("%v", err)
	}
	// The actual address, not the flag: with -listen :0 this line is how
	// scripts (and the exec-level tests) learn the port. Runners start only
	// now — a recovered coordinator sweep needs the daemon's own address
	// (loopback dispatch, seed-store URLs) before it may run.
	m.start("http://" + ln.Addr().String())
	fmt.Printf("iobfleetd: listening on http://%s (data %s, %d sweep slots)\n",
		ln.Addr(), *data, *sweeps)

	// Register with each coordinator and keep heartbeating until drain;
	// the goroutines deregister on the way out so coordinators stop
	// selecting a backend that is about to exit.
	var hb sync.WaitGroup
	for _, c := range coordinators {
		hb.Add(1)
		go func(c string) {
			defer hb.Done()
			heartbeat(m.client, c, m.selfBase, *hbEvery, m.drain)
		}(c)
	}

	srv := &http.Server{Handler: newMux(m, reg)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fail("%v", err)
	case s := <-sig:
		fmt.Printf("iobfleetd: %v: draining (running sweeps checkpoint and park)\n", s)
	}

	// Drain before shutting down HTTP: running sweeps checkpoint and
	// publish their final "interrupted" progress event while clients can
	// still hear it. Then give open connections a moment and cut them —
	// a progress stream on a queued sweep would otherwise hold Shutdown
	// open forever.
	m.beginDrain()
	hb.Wait() // each heartbeat loop sends its goodbye DELETE before exiting
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
	fmt.Println("iobfleetd: drained; restart with the same -data to resume")
}
