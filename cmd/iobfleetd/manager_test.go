package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wiban/internal/obs"
)

// minimalSpec is a spec that passes normalize but — with no runners
// started — never executes, so queue mechanics can be tested in
// isolation from the engine.
func minimalSpec(seed int64) sweepSpec {
	return sweepSpec{Wearers: 8, Seed: seed, DurSeconds: 1}
}

// scrape renders the registry's exposition text without a live server.
func scrape(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	return rec.Body.String()
}

// TestSubmitQueueFull pins the submission-order invariant: the
// queue-capacity check runs before any state is created, so a refused
// submission leaves no sidecar, no registry entry and no gauge
// increment. (The original bug persisted the sweep and bumped the gauge
// first, leaving orphaned state the next restart would re-queue.)
func TestSubmitQueueFull(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	m, err := newManager(dir, 1, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.queueCap = 1 // runners never start, so one slot fills the queue

	if _, err := m.submit(minimalSpec(1)); err != nil {
		t.Fatal(err)
	}
	_, err = m.submit(minimalSpec(2))
	if err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("over-cap submit: %v, want queue-full error", err)
	}

	// The refusal must be invisible: exactly one sweep anywhere.
	if got := m.list(); len(got) != 1 {
		t.Errorf("registry holds %d sweeps after refusal, want 1", len(got))
	}
	sidecars, _ := filepath.Glob(filepath.Join(dir, "s*.json"))
	if len(sidecars) != 1 {
		t.Errorf("%d sidecars on disk after refusal, want 1: %v", len(sidecars), sidecars)
	}
	text := scrape(t, reg)
	if got := metricValue(t, text, "iobfleetd_sweeps_queued"); got != 1 {
		t.Errorf("queued gauge %v after refusal, want 1", got)
	}
	if got := metricValue(t, text, "iobfleetd_sweeps_submitted_total"); got != 1 {
		t.Errorf("submitted_total %v after refusal, want 1", got)
	}

	// A refused submission must not burn an ID either: the next accepted
	// sweep is s000001, not s000002.
	m.queueCap = 2
	st, err := m.submit(minimalSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "s000001" {
		t.Errorf("post-refusal submit got ID %s, want s000001", st.ID)
	}
}

// TestRecoverBeyondQueueCap pins recovery's unbounded staging: a dead
// process may leave arbitrarily many queued sidecars — more than the
// submission queue cap — and the next process must still come up. (The
// original bug staged recovery through the bounded queue, so sidecar
// number queueCap+1 deadlocked newManager before the listener existed.)
func TestRecoverBeyondQueueCap(t *testing.T) {
	dir := t.TempDir()
	n := defaultQueueCap + 1
	for i := 0; i < n; i++ {
		st := sweepState{
			ID:     fmt.Sprintf("s%06d", i),
			Spec:   minimalSpec(int64(i)),
			Status: statusQueued,
		}
		raw, err := json.Marshal(&st)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, st.ID+".json"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	type result struct {
		m   *manager
		err error
	}
	done := make(chan result, 1)
	go func() {
		m, err := newManager(dir, 1, obs.NewRegistry(), nil)
		done <- result{m, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		r.m.mu.Lock()
		queued, pending := r.m.queued, len(r.m.pending)
		r.m.mu.Unlock()
		if queued != n || pending != n {
			t.Errorf("recovered queued=%d pending=%d, want %d each", queued, pending, n)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("newManager deadlocked recovering more sidecars than the queue cap")
	}
}

// TestDrainQueuedGauge pins the drain hand-back: a sweep popped by a
// runner that loses the race with beginDrain goes back to the front of
// the queue, still queued on disk, in memory and in the gauge. (The
// original bug returned early without re-queuing, leaking the gauge and
// orphaning the sweep until restart.)
func TestDrainQueuedGauge(t *testing.T) {
	reg := obs.NewRegistry()
	m, err := newManager(t.TempDir(), 1, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.submit(minimalSpec(1)); err != nil {
		t.Fatal(err)
	}

	// Replay the losing race by hand: pop like a runner, then drain
	// before run() begins. No runners were started, so beginDrain
	// returns as soon as the flag is set.
	m.mu.Lock()
	sw := m.pending[0]
	m.pending = m.pending[1:]
	m.mu.Unlock()
	m.beginDrain()
	m.run(sw)

	m.mu.Lock()
	queued, pending := m.queued, len(m.pending)
	var front *sweep
	if pending > 0 {
		front = m.pending[0]
	}
	m.mu.Unlock()
	if queued != 1 {
		t.Errorf("queued count %d after drain hand-back, want 1", queued)
	}
	if front != sw {
		t.Errorf("drained sweep not back at the queue front (pending %d)", pending)
	}
	if got := sw.snapshot().Status; got != statusQueued {
		t.Errorf("drained sweep status %q, want %q", got, statusQueued)
	}
	if got := metricValue(t, scrape(t, reg), "iobfleetd_sweeps_queued"); got != 1 {
		t.Errorf("queued gauge %v after drain hand-back, want 1", got)
	}
}

// TestHealthzDrainAware pins readiness semantics: /healthz answers 200
// only while the daemon accepts work, and flips to 503 the moment it
// drains — the probe coordinators use to route shards away from a
// backend that would refuse them. (The original bug kept /healthz at
// 200 during drain, so shard dispatch kept selecting dying backends.)
func TestHealthzDrainAware(t *testing.T) {
	reg := obs.NewRegistry()
	m, err := newManager(t.TempDir(), 1, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(m, reg))
	defer srv.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before drain: %d, want 200", code)
	}
	m.beginDrain()
	if code := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: %d, want 503", code)
	}
	// Readiness and behavior must agree: everything that creates or
	// computes work refuses alongside the probe.
	spec := `{"wearers":8,"seed":1,"dur_seconds":1}`
	if code := post("/api/sweeps", spec); code != http.StatusServiceUnavailable {
		t.Errorf("submit during drain: %d, want 503", code)
	}
	loads := `{"wearers":8,"seed":1,"dur_seconds":1,"cells":4}`
	if code := post("/api/loads", loads); code != http.StatusServiceUnavailable {
		t.Errorf("loads gather during drain: %d, want 503", code)
	}
}

// TestSubmitLabelIdempotent pins the shard-dispatch contract: the same
// label with the same spec returns the existing sweep; the same label
// with a different spec is refused rather than silently re-bound.
func TestSubmitLabelIdempotent(t *testing.T) {
	m, err := newManager(t.TempDir(), 1, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := minimalSpec(1)
	spec.Label = "parent/shard0"
	first, err := m.submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := m.submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != first.ID {
		t.Errorf("re-dispatch created %s, want existing %s", again.ID, first.ID)
	}
	if got := m.list(); len(got) != 1 {
		t.Errorf("registry holds %d sweeps after re-dispatch, want 1", len(got))
	}
	changed := spec
	changed.Seed = 99
	if _, err := m.submit(changed); err == nil {
		t.Error("label rebind with a different spec accepted, want error")
	}
}

// TestShardRanges pins the deterministic tiling: contiguous, covering,
// sizes differing by at most one with the remainder up front.
func TestShardRanges(t *testing.T) {
	cases := []struct {
		wearers, shards int
		want            [][2]int
	}{
		{10, 3, [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		{6, 3, [][2]int{{0, 2}, {2, 4}, {4, 6}}},
		{5, 1, [][2]int{{0, 5}}},
		{3, 3, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
	}
	for _, c := range cases {
		got := shardRanges(c.wearers, c.shards)
		if len(got) != len(c.want) {
			t.Fatalf("shardRanges(%d,%d) = %v", c.wearers, c.shards, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("shardRanges(%d,%d)[%d] = %v, want %v", c.wearers, c.shards, i, got[i], c.want[i])
			}
		}
	}
}

// TestShardSubCanonical pins the sub-spec derivation: the coordinator
// knob is stripped, the range lands in first/end, and a final shard
// ending at the population uses the canonical end 0 spelling so it
// round-trips normalize unchanged.
func TestShardSubCanonical(t *testing.T) {
	spec := minimalSpec(7)
	spec.Shards = 2
	sub := shardSub(spec, [2]int{4, 8})
	if sub.Shards != 0 {
		t.Errorf("sub-spec kept shards=%d", sub.Shards)
	}
	if sub.FirstWearer != 4 || sub.EndWearer != 0 {
		t.Errorf("final shard range (%d,%d), want (4,0 canonical)", sub.FirstWearer, sub.EndWearer)
	}
	if err := sub.normalize(); err != nil {
		t.Errorf("canonical sub-spec fails normalize: %v", err)
	}
	mid := shardSub(spec, [2]int{0, 4})
	if mid.FirstWearer != 0 || mid.EndWearer != 4 {
		t.Errorf("mid shard range (%d,%d), want (0,4)", mid.FirstWearer, mid.EndWearer)
	}

	// Series frames ride the merge's record re-encode (the shard Reader
	// re-pairs them, the merged Writer re-cuts the pairs at its own block
	// boundaries), so a sharded sweep accepts series_seconds and the
	// sub-specs carry the cadence through to every backend.
	withSeries := minimalSpec(7)
	withSeries.Shards = 2
	withSeries.SeriesSeconds = 0.5
	if err := withSeries.normalize(); err != nil {
		t.Errorf("sharded spec with series_seconds refused: %v", err)
	}
	seriesSub := shardSub(withSeries, [2]int{0, 4})
	if seriesSub.SeriesSeconds != 0.5 {
		t.Errorf("sub-spec dropped series cadence: %v", seriesSub.SeriesSeconds)
	}
	if err := seriesSub.normalize(); err != nil {
		t.Errorf("series sub-spec fails normalize: %v", err)
	}
	if _, meta, err := seriesSub.build(nil); err != nil || !meta.Series() {
		t.Errorf("series sub-spec builds a series-off store (meta %+v, err %v)", meta, err)
	}
}
