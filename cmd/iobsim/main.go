// Command iobsim runs a discrete-event simulation of a human-inspired
// body-area network and reports per-node traffic, energy and battery-life
// projections.
//
// Usage:
//
//	iobsim -dur 3600 -seed 42          # one hour, default 4-node BAN
//	iobsim -dur 600 -ble               # same nodes forced onto BLE radios
package main

import (
	"flag"
	"fmt"
	"os"

	"wiban/internal/bannet"
	"wiban/internal/energy"
	"wiban/internal/isa"
	"wiban/internal/radio"
	"wiban/internal/sensors"
	"wiban/internal/units"
)

// scenario builds the default heterogeneous BAN: ECG patch, IMU, voice
// mic with ADPCM, QVGA camera with MJPEG.
func scenario(useBLE bool) bannet.Config {
	mk := func() *radio.Transceiver {
		if useBLE {
			return radio.BLE42()
		}
		return radio.WiR()
	}
	nodes := []bannet.NodeConfig{
		{
			ID: 1, Name: "ecg-patch", Sensor: sensors.ECGPatch(),
			Policy: isa.StreamAll{}, Radio: mk(), Battery: energy.Fig3Battery(),
			PacketBits: 1024, PER: 0.01, MaxRetries: 5,
		},
		{
			ID: 2, Name: "imu-band", Sensor: sensors.IMU6Axis(),
			Policy: isa.StreamAll{}, Radio: mk(), Battery: energy.CR2032(),
			Harvester: energy.IndoorPV(), PacketBits: 1024, PER: 0.02, MaxRetries: 5,
		},
		{
			ID: 3, Name: "voice-mic", Sensor: sensors.MicMono(),
			Policy: isa.Compress{Label: "ADPCM", MeasuredRatio: 4, Power: 20 * units.Microwatt},
			Radio:  mk(), Battery: energy.Fig3Battery(),
			PacketBits: 4096, PER: 0.02, MaxRetries: 4,
		},
	}
	if !useBLE {
		// The MJPEG camera stream (1.15 Mbps) only fits the Wi-R medium.
		nodes = append(nodes, bannet.NodeConfig{
			ID: 4, Name: "camera", Sensor: sensors.CameraQVGA(),
			Policy: isa.Compress{Label: "MJPEG q50", MeasuredRatio: 8, Power: 500 * units.Microwatt},
			Radio:  mk(), Battery: energy.LiPo(300),
			PacketBits: 16384, PER: 0.02, MaxRetries: 4,
		})
	}
	return bannet.Config{Nodes: nodes}
}

func main() {
	var (
		durSec = flag.Float64("dur", 3600, "simulated span in seconds")
		seed   = flag.Int64("seed", 42, "simulation seed")
		useBLE = flag.Bool("ble", false, "replace Wi-R radios with BLE 4.2")
	)
	flag.Parse()

	cfg := scenario(*useBLE)
	cfg.Seed = *seed
	rep, err := bannet.Run(cfg, units.Duration(*durSec))
	if err != nil {
		fmt.Fprintf(os.Stderr, "iobsim: %v\n", err)
		os.Exit(1)
	}

	tech := "Wi-R"
	if *useBLE {
		tech = "BLE 4.2"
	}
	fmt.Printf("BAN simulation: %v simulated on %s (%d events, utilization %.1f%%)\n\n",
		rep.Duration, tech, rep.Events, rep.Schedule.Utilization()*100)
	fmt.Printf("%-12s %9s %9s %7s %10s %12s %12s %10s %10s %5s\n",
		"node", "delivered", "dropped", "deliv%", "p50 lat", "avg power", "life", "p99 lat", "harvested", "perp")
	for _, n := range rep.Nodes {
		fmt.Printf("%-12s %9d %9d %6.1f%% %10v %12v %12v %10v %10v %5v\n",
			n.Name, n.PacketsDelivered, n.PacketsDropped, n.DeliveryRate()*100,
			n.LatencyP50, n.AvgPower, n.ProjectedLife, n.LatencyP99, n.Harvested, n.Perpetual)
	}
	fmt.Printf("\nhub: received %.2f MB, rx energy %v\n",
		float64(rep.HubRxBits)/8e6, rep.HubRxEnergy)
}
