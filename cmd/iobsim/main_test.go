package main

import (
	"testing"

	"wiban/internal/bannet"
	"wiban/internal/units"
)

// TestScenarioBuildsAndRuns smoke-tests both radio variants of the default
// scenario: the config must validate and a short simulation must deliver
// traffic on every node.
func TestScenarioBuildsAndRuns(t *testing.T) {
	for _, ble := range []bool{false, true} {
		cfg := scenario(ble)
		cfg.Seed = 1
		sim, err := bannet.NewSim(cfg)
		if err != nil {
			t.Fatalf("ble=%v: scenario does not validate: %v", ble, err)
		}
		rep, err := sim.Run(10 * units.Second)
		if err != nil {
			t.Fatalf("ble=%v: %v", ble, err)
		}
		wantNodes := 4
		if ble {
			wantNodes = 3 // the camera stream does not fit BLE
		}
		if len(rep.Nodes) != wantNodes {
			t.Fatalf("ble=%v: %d nodes, want %d", ble, len(rep.Nodes), wantNodes)
		}
		for _, n := range rep.Nodes {
			if n.PacketsDelivered == 0 {
				t.Errorf("ble=%v: node %s delivered nothing in 10 s", ble, n.Name)
			}
		}
	}
}
