// Command iobtrace inspects, verifies and re-aggregates fleet telemetry
// stores written by iobfleet -out (see wiban/internal/telemetry for the
// format).
//
// Usage:
//
//	iobtrace info   sweep.wtl             # header, blocks, compression
//	iobtrace verify sweep.wtl             # CRC-scan every physical block
//	iobtrace report sweep.wtl             # re-derive the aggregate report
//	iobtrace cells  sweep.wtl             # per-cell interference report
//	iobtrace wearer -w 123 sweep.wtl      # dump one wearer's record
//	iobtrace query -metric charge -agg p10 sweep.wtl          # aggregate the time series
//	iobtrace query -metric per -from 100 -to 200 -cell 3 -agg avg sweep.wtl
//
// `report` replays the stored records through the same streaming
// aggregator the live sweep used, so its fingerprint matches the one
// iobfleet printed — the store is a complete, portable witness of the
// run. `verify` audits the physical file in strict mode: it ignores the
// checkpoint sidecar (which a reader normally trusts to bound the
// committed prefix) and exits non-zero if any byte of the file fails its
// frame CRC — including damage a stale checkpoint would hide and torn
// tails a kill left behind. `cells` renders the spectrum-coupled sweep's
// per-cell congestion table (iobfleet -cells/-density): wearers, foreign
// offered load, the equivalent RF link-budget penalty, delivery and
// death counts per cell; on a feedback-coupled store (iobfleet
// -feedback, format v2) it adds the equilibrium retry-inflated load next
// to the first-order one plus each cell's fixed-point iteration count,
// while pre-feedback stores keep the original columns.
//
// `query` aggregates the per-node time series of a series-enabled store
// (iobfleet -series, format v3). -metric picks the sampled column
// (charge, queue, per, collisions), -from/-to bound the sample time in
// simulated seconds (inclusive; -to 0 leaves the range open), -cell and
// -node restrict the population (-1 matches all), and -agg picks the
// aggregation: sum, avg, count, min, max or pNN for an exact percentile
// (e.g. p99). A completely written store is queried through its trailing
// block index, so narrow time or cell ranges read only the overlapping
// blocks; a store whose index is missing (killed mid-sweep) degrades to
// a sequential scan. NaN samples — windows in which a node never
// transmitted — are reported as excluded gaps, never folded into the
// aggregate.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"wiban/internal/channel"
	"wiban/internal/compress"
	"wiban/internal/fleet"
	"wiban/internal/telemetry"
	"wiban/internal/units"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: iobtrace <info|verify|report|cells|wearer|query> [flags] <store.wtl>\n")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "info":
		err = withStore(cmd, args, nil, telemetry.Open, info)
	case "verify":
		// Strict open: audit every physical byte, trust no checkpoint. A
		// CRC-invalid file must exit non-zero even when the header parses
		// and a (possibly stale) sidecar vouches for a shorter prefix.
		err = withStore(cmd, args, nil, telemetry.OpenStrict, verify)
	case "report":
		err = withStore(cmd, args, nil, telemetry.Open, report)
	case "cells":
		err = withStore(cmd, args, nil, telemetry.Open, cells)
	case "wearer":
		var w int
		err = withStore(cmd, args, func(fs *flag.FlagSet) {
			fs.IntVar(&w, "w", 0, "wearer index to dump")
		}, telemetry.Open, func(r *telemetry.Reader) error { return wearer(r, w) })
	case "query":
		err = query(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "iobtrace: %v\n", err)
		os.Exit(1)
	}
}

// withStore parses the subcommand's flags, opens the single positional
// store argument through the given opener and hands the reader to fn.
func withStore(cmd string, args []string, defineFlags func(*flag.FlagSet),
	open func(string) (*telemetry.Reader, error), fn func(*telemetry.Reader) error) error {
	fs := flag.NewFlagSet("iobtrace "+cmd, flag.ExitOnError)
	if defineFlags != nil {
		defineFlags(fs)
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	r, err := open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer r.Close()
	return fn(r)
}

// drainCount iterates the whole store (populating the reader's totals)
// and returns the record count.
func drainCount(r *telemetry.Reader) (int, error) {
	for {
		if _, err := r.Next(); err == io.EOF {
			return r.Records(), nil
		} else if err != nil {
			return r.Records(), err
		}
	}
}

func info(r *telemetry.Reader) error {
	m := r.Meta()
	n, err := drainCount(r)
	if err != nil {
		return err
	}
	first, end := m.Range()
	fmt.Printf("telemetry store: %d/%d wearers in %d blocks (block size %d)\n",
		n, end-first, r.Blocks(), m.BlockSize)
	fmt.Printf("  sweep:       seed %d, %v per wearer\n", m.FleetSeed, units.Duration(m.SpanSeconds))
	if first != 0 || end != m.Wearers {
		// A shard store: a contiguous slice of a larger sweep, carrying its
		// absolute wearer range so seeds and cell placement stay global.
		fmt.Printf("  shard:       wearers [%d, %d) of %d\n", first, end, m.Wearers)
	}
	if m.Scenario != "" {
		fmt.Printf("  scenario:    %s\n", m.Scenario)
	}
	if m.Cells > 0 {
		mode := "first-order"
		if m.Feedback {
			mode = "feedback equilibrium"
		}
		fmt.Printf("  spectrum:    coupled, %d cells, %s (format v%d)\n", m.Cells, mode, m.Version)
	}
	if m.Series() {
		fmt.Printf("  series:      %gs cadence, %d samples (format v%d)\n",
			m.SeriesCadenceSeconds, r.SeriesPoints(), m.Version)
	}
	fmt.Printf("  checkpoint:  valid=%t  complete=%t\n", r.Checkpointed(), n == end-first)
	if n == 0 {
		// No committed records: there is nothing to compress, so the usual
		// ratio line would misreport "0.00x compression" for a perfectly
		// healthy header-only store.
		fmt.Printf("  size:        %d bytes on disk (header only, no committed records)\n", r.StoredBytes())
		return nil
	}
	fmt.Printf("  size:        %d bytes on disk, %d raw (%.2fx compression, %.1f B/wearer)\n",
		r.StoredBytes(), r.RawBytes(),
		compress.Ratio(int(r.RawBytes()), int(r.StoredBytes())), float64(r.StoredBytes())/float64(n))
	return nil
}

func verify(r *telemetry.Reader) error {
	// The reader is strict (OpenStrict): any damaged, torn or
	// out-of-place frame — anywhere in the physical file — surfaces as a
	// hard error from Next, never as a silent truncation.
	n, err := drainCount(r)
	if err != nil {
		return fmt.Errorf("block %d: %w", r.Blocks(), err)
	}
	fmt.Printf("ok: %d blocks, %d records, every CRC verified\n", r.Blocks(), n)
	m := r.Meta()
	if first, end := m.Range(); n < end-first {
		fmt.Printf("note: sweep incomplete (%d/%d wearers) — finish it with iobfleet -resume\n", n, end-first)
	}
	return nil
}

func report(r *telemetry.Reader) error {
	agg := fleet.NewStreamAggregator(units.Duration(r.Meta().SpanSeconds))
	n, err := fleet.Replay(r, agg)
	if err != nil {
		return err
	}
	rep := agg.Report()
	fmt.Println(rep)
	m := r.Meta()
	if first, end := m.Range(); n < end-first {
		fmt.Printf("  (partial: %d/%d wearers committed)\n", n, end-first)
	}
	fmt.Printf("  fingerprint %s (seed %d)\n", rep.Fingerprint()[:16], r.Meta().FleetSeed)
	return nil
}

// cells renders the per-cell interference table of a spectrum-coupled
// sweep: who shared a cell, how loud it was, and what that did to
// delivery. The dB column translates each cell's mean foreign load into
// the equivalent RF link-budget penalty via the load-aware congestion
// curve (wiban/internal/channel). On a feedback-coupled (format v2)
// store two extra columns show the first-order and equilibrium loads
// side by side plus each cell's fixed-point round count; a pre-feedback
// store renders the original table.
func cells(r *telemetry.Reader) error {
	m := r.Meta()
	agg := fleet.NewStreamAggregator(units.Duration(m.SpanSeconds))
	n, err := fleet.Replay(r, agg)
	if err != nil {
		return err
	}
	rep := agg.Report()
	if len(rep.Cells) == 0 {
		return fmt.Errorf("store holds no cell data — an uncoupled sweep (rerun iobfleet with -cells or -density)")
	}
	path := channel.DefaultBLEPath()
	fmt.Printf("spectrum cells: %d populated of %d (%d wearers, %d nodes)\n",
		len(rep.Cells), m.Cells, n, rep.Nodes)
	if m.Feedback {
		fmt.Printf("%6s %8s %6s %12s %9s %6s %9s %10s %6s\n",
			"cell", "wearers", "nodes", "foreign[erl]", "eq[erl]", "iters", "rise[dB]", "delivery", "died")
	} else {
		fmt.Printf("%6s %8s %6s %12s %9s %10s %6s\n",
			"cell", "wearers", "nodes", "foreign[erl]", "rise[dB]", "delivery", "died")
	}
	for _, c := range rep.Cells {
		// CongestionLossDB wants the band-busy fraction, not offered
		// load: an unslotted channel offered G erlangs is busy 1−e^(−G)
		// of the time, which keeps the column discriminating well past
		// G = 1 instead of pinning at the curve's saturation clamp. On a
		// feedback store the equilibrium load is the better congestion
		// estimate, so the dB column uses it.
		load := c.MeanForeignLoad
		if m.Feedback {
			load = c.MeanEqForeignLoad
		}
		busy := 1 - math.Exp(-load)
		if m.Feedback {
			fmt.Printf("%6d %8d %6d %12.4f %9.4f %6d %9.2f %10.4f %6d\n",
				c.Cell, c.Wearers, c.Nodes, c.MeanForeignLoad, c.MeanEqForeignLoad,
				c.FeedbackIters, path.CongestionLossDB(busy), c.MeanDelivery, c.Died)
		} else {
			fmt.Printf("%6d %8d %6d %12.4f %9.2f %10.4f %6d\n",
				c.Cell, c.Wearers, c.Nodes, c.MeanForeignLoad,
				path.CongestionLossDB(busy), c.MeanDelivery, c.Died)
		}
	}
	return nil
}

// query aggregates a series-enabled store's samples; unlike the other
// subcommands it drives telemetry.QueryStore by path so the block index
// can prune the read set instead of streaming every record.
func query(args []string) error {
	fs := flag.NewFlagSet("iobtrace query", flag.ExitOnError)
	metric := fs.String("metric", "charge", "series column: charge, queue, per or collisions")
	from := fs.Float64("from", 0, "inclusive lower sample-time bound in simulated seconds")
	to := fs.Float64("to", 0, "inclusive upper sample-time bound in simulated seconds (0 = open)")
	cell := fs.Int("cell", -1, "restrict to wearers in this spectrum cell (-1 = all)")
	node := fs.Int("node", -1, "restrict to this node index within each wearer (-1 = all)")
	agg := fs.String("agg", "avg", "aggregation: sum, avg, count, min, max or pNN (exact percentile)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	stats, err := telemetry.QueryStore(fs.Arg(0), telemetry.Query{
		Metric: *metric,
		FromMS: int64(math.Round(*from * 1000)),
		ToMS:   int64(math.Round(*to * 1000)),
		Cell:   *cell,
		Node:   *node,
	})
	if err != nil {
		return err
	}
	var val float64
	switch {
	case *agg == "sum":
		val = stats.Sum
	case *agg == "avg":
		val = stats.Mean()
	case *agg == "count":
		val = float64(stats.Points)
	case *agg == "min":
		val = stats.Min
	case *agg == "max":
		val = stats.Max
	case len(*agg) > 1 && (*agg)[0] == 'p':
		pct, perr := strconv.ParseFloat((*agg)[1:], 64)
		if perr != nil || pct < 0 || pct > 100 {
			return fmt.Errorf("bad percentile %q (want p0..p100)", *agg)
		}
		val = stats.Percentile(pct)
	default:
		return fmt.Errorf("unknown aggregation %q (want sum, avg, count, min, max or pNN)", *agg)
	}
	fmt.Printf("%s(%s) = %g\n", *agg, *metric, val)
	fmt.Printf("  samples: %d matched, %d gap windows excluded\n", stats.Points, stats.Gaps)
	return nil
}

func wearer(r *telemetry.Reader, w int) error {
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return fmt.Errorf("wearer %d not in store (%d records)", w, r.Records())
		}
		if err != nil {
			return err
		}
		if rec.Wearer != w {
			continue
		}
		fmt.Printf("wearer %d: %d events, %d hub rx bits, hub utilization %.4f, %d nodes\n",
			rec.Wearer, rec.Events, rec.HubRxBits, rec.HubUtilization, len(rec.Nodes))
		for i, n := range rec.Nodes {
			fmt.Printf("  node %d: %d gen / %d del / %d drop (%d tx, %d bits)  life %.1fh  p50 %.2fms  p99 %.2fms  perpetual=%t died=%t\n",
				i, n.PacketsGenerated, n.PacketsDelivered, n.PacketsDropped,
				n.Transmissions, n.BitsDelivered,
				n.ProjectedLife/float64(units.Hour), n.LatencyP50*1e3, n.LatencyP99*1e3,
				n.Perpetual, n.Died)
		}
		return nil
	}
}
