// Command iobtrace inspects, verifies and re-aggregates fleet telemetry
// stores written by iobfleet -out (see wiban/internal/telemetry for the
// format).
//
// Usage:
//
//	iobtrace info   sweep.wtl             # header, blocks, compression
//	iobtrace verify sweep.wtl             # CRC-scan every block
//	iobtrace report sweep.wtl             # re-derive the aggregate report
//	iobtrace wearer -w 123 sweep.wtl      # dump one wearer's record
//
// `report` replays the stored records through the same streaming
// aggregator the live sweep used, so its fingerprint matches the one
// iobfleet printed — the store is a complete, portable witness of the
// run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wiban/internal/compress"
	"wiban/internal/fleet"
	"wiban/internal/telemetry"
	"wiban/internal/units"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: iobtrace <info|verify|report|wearer> [flags] <store.wtl>\n")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "info":
		err = withStore(cmd, args, nil, info)
	case "verify":
		err = withStore(cmd, args, nil, verify)
	case "report":
		err = withStore(cmd, args, nil, report)
	case "wearer":
		var w int
		err = withStore(cmd, args, func(fs *flag.FlagSet) {
			fs.IntVar(&w, "w", 0, "wearer index to dump")
		}, func(r *telemetry.Reader) error { return wearer(r, w) })
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "iobtrace: %v\n", err)
		os.Exit(1)
	}
}

// withStore parses the subcommand's flags, opens the single positional
// store argument and hands the reader to fn.
func withStore(cmd string, args []string, defineFlags func(*flag.FlagSet), fn func(*telemetry.Reader) error) error {
	fs := flag.NewFlagSet("iobtrace "+cmd, flag.ExitOnError)
	if defineFlags != nil {
		defineFlags(fs)
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	r, err := telemetry.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer r.Close()
	return fn(r)
}

// drainCount iterates the whole store (populating the reader's totals)
// and returns the record count.
func drainCount(r *telemetry.Reader) (int, error) {
	for {
		if _, err := r.Next(); err == io.EOF {
			return r.Records(), nil
		} else if err != nil {
			return r.Records(), err
		}
	}
}

func info(r *telemetry.Reader) error {
	m := r.Meta()
	n, err := drainCount(r)
	if err != nil {
		return err
	}
	fmt.Printf("telemetry store: %d/%d wearers in %d blocks (block size %d)\n",
		n, m.Wearers, r.Blocks(), m.BlockSize)
	fmt.Printf("  sweep:       seed %d, %v per wearer\n", m.FleetSeed, units.Duration(m.SpanSeconds))
	if m.Scenario != "" {
		fmt.Printf("  scenario:    %s\n", m.Scenario)
	}
	fmt.Printf("  checkpoint:  valid=%t  complete=%t\n", r.Checkpointed(), n == m.Wearers)
	fmt.Printf("  size:        %d bytes on disk, %d raw (%.2fx compression, %.1f B/wearer)\n",
		r.StoredBytes(), r.RawBytes(),
		compress.Ratio(int(r.RawBytes()), int(r.StoredBytes())), float64(r.StoredBytes())/float64(max(n, 1)))
	return nil
}

func verify(r *telemetry.Reader) error {
	n, err := drainCount(r)
	if err != nil {
		return fmt.Errorf("block %d: %w", r.Blocks(), err)
	}
	if r.Truncated() {
		return fmt.Errorf("store damaged after %d blocks (%d records): uncheckpointed tail is not recoverable", r.Blocks(), n)
	}
	fmt.Printf("ok: %d blocks, %d records, every CRC verified\n", r.Blocks(), n)
	if n < r.Meta().Wearers {
		fmt.Printf("note: sweep incomplete (%d/%d wearers) — finish it with iobfleet -resume\n", n, r.Meta().Wearers)
	}
	return nil
}

func report(r *telemetry.Reader) error {
	agg := fleet.NewStreamAggregator(units.Duration(r.Meta().SpanSeconds))
	n, err := fleet.Replay(r, agg)
	if err != nil {
		return err
	}
	rep := agg.Report()
	fmt.Println(rep)
	if n < r.Meta().Wearers {
		fmt.Printf("  (partial: %d/%d wearers committed)\n", n, r.Meta().Wearers)
	}
	fmt.Printf("  fingerprint %s (seed %d)\n", rep.Fingerprint()[:16], r.Meta().FleetSeed)
	return nil
}

func wearer(r *telemetry.Reader, w int) error {
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return fmt.Errorf("wearer %d not in store (%d records)", w, r.Records())
		}
		if err != nil {
			return err
		}
		if rec.Wearer != w {
			continue
		}
		fmt.Printf("wearer %d: %d events, %d hub rx bits, hub utilization %.4f, %d nodes\n",
			rec.Wearer, rec.Events, rec.HubRxBits, rec.HubUtilization, len(rec.Nodes))
		for i, n := range rec.Nodes {
			fmt.Printf("  node %d: %d gen / %d del / %d drop (%d tx, %d bits)  life %.1fh  p50 %.2fms  p99 %.2fms  perpetual=%t died=%t\n",
				i, n.PacketsGenerated, n.PacketsDelivered, n.PacketsDropped,
				n.Transmissions, n.BitsDelivered,
				n.ProjectedLife/float64(units.Hour), n.LatencyP50*1e3, n.LatencyP99*1e3,
				n.Perpetual, n.Died)
		}
		return nil
	}
}
