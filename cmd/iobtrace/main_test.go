package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"wiban/internal/fleet"
	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// writeSweep streams a miniature fleet into a telemetry store and
// returns its path plus the live fingerprint.
func writeSweep(t *testing.T) (string, string) {
	t.Helper()
	gen := &fleet.Generator{Base: fleet.DefaultBase(), PERSpread: 0.5, BatterySpread: 0.3}
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	f := &fleet.Fleet{Wearers: 30, Seed: 7, Scenario: gen.Scenario(), Span: 5 * units.Second, Workers: 2}
	path := filepath.Join(t.TempDir(), "sweep.wtl")
	store, err := telemetry.Create(path, telemetry.Meta{
		FleetSeed: f.Seed, Wearers: f.Wearers, SpanSeconds: float64(f.Span),
		Scenario: gen.Tag(), BlockSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg := fleet.NewStreamAggregator(f.Span)
	if _, err := f.Stream(fleet.Tee(store, agg)); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	return path, agg.Report().Fingerprint()
}

// open returns a fresh reader for the store.
func open(t *testing.T, path string) *telemetry.Reader {
	t.Helper()
	r, err := telemetry.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestSubcommandsOnCompleteStore runs every subcommand body against a
// freshly written store.
func TestSubcommandsOnCompleteStore(t *testing.T) {
	path, want := writeSweep(t)

	if err := info(open(t, path)); err != nil {
		t.Errorf("info: %v", err)
	}
	if err := verify(open(t, path)); err != nil {
		t.Errorf("verify: %v", err)
	}
	if err := report(open(t, path)); err != nil {
		t.Errorf("report: %v", err)
	}
	if err := wearer(open(t, path), 17); err != nil {
		t.Errorf("wearer: %v", err)
	}
	if err := wearer(open(t, path), 99); err == nil || !strings.Contains(err.Error(), "not in store") {
		t.Errorf("missing wearer: err = %v", err)
	}

	// The re-derived aggregate matches the live sweep bit-for-bit.
	r := open(t, path)
	agg := fleet.NewStreamAggregator(units.Duration(r.Meta().SpanSeconds))
	if _, err := fleet.Replay(r, agg); err != nil {
		t.Fatal(err)
	}
	if got := agg.Report().Fingerprint(); got != want {
		t.Fatalf("re-aggregated fingerprint %s, live sweep %s", got, want)
	}
}

// TestVerifyFlagsCorruption flips a byte and demands verify fail loudly.
func TestVerifyFlagsCorruption(t *testing.T) {
	path, _ := writeSweep(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-9] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := verify(open(t, path)); err == nil {
		t.Fatal("verify accepted a corrupted store")
	}
}

// TestMain lets tests re-exec this binary as the real iobtrace command,
// pinning actual process exit codes rather than in-process error values.
func TestMain(m *testing.M) {
	if os.Getenv("IOBTRACE_RUN_MAIN") == "1" {
		main()
		os.Exit(0) // main returned without failing
	}
	os.Exit(m.Run())
}

// corruptPastStaleCheckpoint installs a genuinely valid sidecar that
// only vouches for the store's first block, then flips a byte in its
// final block — the damage a checkpoint-trusting verify used to miss.
// The stale sidecar is produced by the telemetry layer itself (a scan
// resume over a copy of the one-block prefix), so it carries a correct
// self-CRC and seed check — exactly what a kill after the first commit
// would have left behind.
func corruptPastStaleCheckpoint(t *testing.T, path string, blockSize int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first := bytes.Index(data, []byte("WBLK"))
	second := bytes.Index(data[first+4:], []byte("WBLK"))
	if first < 0 || second < 0 {
		t.Fatalf("store has fewer than two blocks (first=%d second=%d)", first, second)
	}
	scratch := filepath.Join(t.TempDir(), "stale.wtl")
	if err := os.WriteFile(scratch, data[:first+4+second], 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := telemetry.Resume(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if w.NextWearer() != blockSize {
		t.Fatalf("one-block prefix checkpointed at wearer %d, want %d", w.NextWearer(), blockSize)
	}
	w.Abort()
	ck, err := os.ReadFile(telemetry.CheckpointPath(scratch))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(telemetry.CheckpointPath(path), ck, 0o644); err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0x20 // damage inside the final block, past the stale checkpoint
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyFlagsCorruptionPastStaleCheckpoint is the regression pin for
// the strict-verify fix: a CRC-invalid file must fail verification even
// when the header parses and a stale-but-valid checkpoint sidecar vouches
// for an earlier prefix. The checkpoint-trusting reader (what verify used
// to run on) is demonstrably blind to the damage, so without OpenStrict
// this test fails.
func TestVerifyFlagsCorruptionPastStaleCheckpoint(t *testing.T) {
	path, _ := writeSweep(t)
	corruptPastStaleCheckpoint(t, path, 8)

	// The damage hides from a checkpoint-trusting read…
	blind := open(t, path)
	for {
		if _, err := blind.Next(); err != nil {
			if err != io.EOF {
				t.Fatalf("checkpoint-bounded reader surfaced the damage itself: %v", err)
			}
			break
		}
	}
	// …but strict verify must catch it.
	rs, err := telemetry.OpenStrict(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if err := verify(rs); err == nil {
		t.Fatal("verify accepted a CRC-invalid store behind a stale checkpoint")
	}
}

// TestVerifyExitCodes pins the command's actual process exit codes: 0 on
// an intact store, non-zero once a byte flips — with and without the
// checkpoint sidecar shielding the damage.
func TestVerifyExitCodes(t *testing.T) {
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	run := func(path string) int {
		cmd := exec.Command(bin, "verify", path)
		cmd.Env = append(os.Environ(), "IOBTRACE_RUN_MAIN=1")
		var out strings.Builder
		cmd.Stdout, cmd.Stderr = &out, &out
		err := cmd.Run()
		t.Logf("verify %s: %v\n%s", path, err, out.String())
		if err == nil {
			return 0
		}
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatal(err)
		}
		return ee.ExitCode()
	}

	clean, _ := writeSweep(t)
	if code := run(clean); code != 0 {
		t.Fatalf("verify of an intact store exited %d", code)
	}

	stale, _ := writeSweep(t)
	corruptPastStaleCheckpoint(t, stale, 8)
	if code := run(stale); code == 0 {
		t.Fatal("verify exited 0 on a CRC-invalid store behind a stale checkpoint")
	}

	flipped, _ := writeSweep(t)
	data, err := os.ReadFile(flipped)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-9] ^= 0x40
	if err := os.WriteFile(flipped, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run(flipped); code == 0 {
		t.Fatal("verify exited 0 on a CRC-flipped store")
	}
}

// TestCellsReport drives the per-cell subcommand against a coupled sweep
// and checks an uncoupled store is refused with a helpful error.
func TestCellsReport(t *testing.T) {
	uncoupled, _ := writeSweep(t)
	if err := cells(open(t, uncoupled)); err == nil || !strings.Contains(err.Error(), "uncoupled") {
		t.Errorf("cells on an uncoupled store: err = %v", err)
	}

	// A miniature coupled sweep streamed to a v1 store.
	f := &fleet.Fleet{
		Wearers:  40,
		Seed:     5,
		Scenario: (&fleet.Generator{Base: fleet.DefaultBase(), BLEFraction: 1}).Scenario(),
		Span:     5 * units.Second,
		Workers:  2,
		Coupling: &fleet.Coupling{Cells: 4},
	}
	path := filepath.Join(t.TempDir(), "coupled.wtl")
	store, err := telemetry.Create(path, telemetry.Meta{
		FleetSeed: f.Seed, Wearers: f.Wearers, SpanSeconds: float64(f.Span),
		Scenario: "cells-test;" + f.Coupling.Tag(), BlockSize: 8,
		Version: telemetry.CurrentFormat, Cells: f.Coupling.Cells,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stream(store); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cells(open(t, path)); err != nil {
		t.Errorf("cells: %v", err)
	}
	if err := info(open(t, path)); err != nil {
		t.Errorf("info on coupled store: %v", err)
	}
}

// writeCoupledStore streams a miniature coupled sweep into a store of
// the given format, optionally with the feedback loop closed.
func writeCoupledStore(t *testing.T, version int, feedback bool) string {
	t.Helper()
	f := &fleet.Fleet{
		Wearers:  40,
		Seed:     5,
		Scenario: (&fleet.Generator{Base: fleet.DefaultBase(), BLEFraction: 1}).Scenario(),
		Span:     5 * units.Second,
		Workers:  2,
		Coupling: &fleet.Coupling{Cells: 4, Feedback: feedback},
	}
	path := filepath.Join(t.TempDir(), "coupled.wtl")
	store, err := telemetry.Create(path, telemetry.Meta{
		FleetSeed: f.Seed, Wearers: f.Wearers, SpanSeconds: float64(f.Span),
		Scenario: "cells-test;" + f.Coupling.Tag(), BlockSize: 8,
		Version: version, Cells: f.Coupling.Cells, Feedback: feedback,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stream(store); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCLI re-execs this test binary as the real iobtrace command and
// returns its process exit code plus combined output.
func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), "IOBTRACE_RUN_MAIN=1")
	var out strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &out
	err = cmd.Run()
	if err == nil {
		return 0, out.String()
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatal(err)
	}
	return ee.ExitCode(), out.String()
}

// TestHeaderOnlyStoreExitCodes pins the header-only contract end to end:
// a store holding a valid header but zero committed blocks must pass
// verify and info with exit 0, info must say so in words, and the old
// "0.00x compression" misreport must stay gone.
func TestHeaderOnlyStoreExitCodes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "header-only.wtl")
	w, err := telemetry.Create(path, telemetry.Meta{
		FleetSeed: 3, Wearers: 12, SpanSeconds: 5,
		Version: telemetry.CurrentFormat, BlockSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	if code, out := runCLI(t, "verify", path); code != 0 {
		t.Fatalf("verify of a header-only store exited %d:\n%s", code, out)
	}
	code, out := runCLI(t, "info", path)
	if code != 0 {
		t.Fatalf("info of a header-only store exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "header only, no committed records") {
		t.Errorf("info did not flag the header-only store:\n%s", out)
	}
	if strings.Contains(out, "0.00x") {
		t.Errorf("info still misreports compression on an empty store:\n%s", out)
	}
}

// writeSeriesSweep streams a miniature series-sampling fleet into a v3
// store and returns its path.
func writeSeriesSweep(t *testing.T) string {
	t.Helper()
	gen := &fleet.Generator{Base: fleet.DefaultBase(), PERSpread: 0.5, BatterySpread: 0.3}
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	f := &fleet.Fleet{
		Wearers: 30, Seed: 7, Scenario: gen.Scenario(),
		Span: 5 * units.Second, Workers: 2,
		Series: units.Second / 2,
	}
	path := filepath.Join(t.TempDir(), "series.wtl")
	store, err := telemetry.Create(path, telemetry.Meta{
		FleetSeed: f.Seed, Wearers: f.Wearers, SpanSeconds: float64(f.Span),
		Scenario: gen.Tag(), BlockSize: 8,
		Version: telemetry.FormatV3, SeriesCadenceSeconds: float64(f.Series),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stream(store); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestQueryCommand pins the real query subcommand: exit 0 and a value
// matching the library on a series store, exit non-zero with a directed
// message on a store that was swept without sampling.
func TestQueryCommand(t *testing.T) {
	path := writeSeriesSweep(t)

	want, err := telemetry.QueryStore(path, telemetry.Query{
		Metric: "charge", FromMS: 1000, ToMS: 4000, Cell: -1, Node: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want.Points == 0 {
		t.Fatal("series sweep produced no samples in the query window")
	}
	code, out := runCLI(t, "query", "-metric", "charge",
		"-from", "1", "-to", "4", "-agg", "avg", path)
	if code != 0 {
		t.Fatalf("query exited %d:\n%s", code, out)
	}
	if wantLine := fmt.Sprintf("avg(charge) = %g", want.Mean()); !strings.Contains(out, wantLine) {
		t.Errorf("query output missing %q:\n%s", wantLine, out)
	}
	if wantLine := fmt.Sprintf("samples: %d matched", want.Points); !strings.Contains(out, wantLine) {
		t.Errorf("query output missing %q:\n%s", wantLine, out)
	}

	if code, out := runCLI(t, "query", "-agg", "p95", "-metric", "queue", path); code != 0 {
		t.Fatalf("percentile query exited %d:\n%s", code, out)
	} else if !strings.Contains(out, "p95(queue) = ") {
		t.Errorf("percentile query output malformed:\n%s", out)
	}

	// Info on the same store surfaces the series cadence and sample count.
	if code, out := runCLI(t, "info", path); code != 0 {
		t.Fatalf("info on series store exited %d:\n%s", code, out)
	} else if !strings.Contains(out, "series:") || !strings.Contains(out, "cadence") {
		t.Errorf("info on a series store omitted the series line:\n%s", out)
	}

	// A store swept without sampling is refused with a directed message.
	off, _ := writeSweep(t)
	code, out = runCLI(t, "query", "-metric", "charge", off)
	if code == 0 {
		t.Fatalf("query exited 0 on a series-off store:\n%s", out)
	}
	if !strings.Contains(out, "no series") {
		t.Errorf("series-off refusal lacks a directed message:\n%s", out)
	}
}

// TestCellsColumnsByFormat pins the real command's rendering across
// store generations: a v1 (pre-feedback) store renders the per-cell
// table without equilibrium columns instead of erroring, and a feedback
// (v2) store shows the first-order and equilibrium loads side by side.
func TestCellsColumnsByFormat(t *testing.T) {
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	run := func(path string) string {
		cmd := exec.Command(bin, "cells", path)
		cmd.Env = append(os.Environ(), "IOBTRACE_RUN_MAIN=1")
		var out strings.Builder
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Run(); err != nil {
			t.Fatalf("iobtrace cells %s: %v\n%s", path, err, out.String())
		}
		return out.String()
	}

	v1 := run(writeCoupledStore(t, telemetry.FormatV1, false))
	if !strings.Contains(v1, "foreign[erl]") {
		t.Errorf("v1 table lost the first-order column:\n%s", v1)
	}
	if strings.Contains(v1, "eq[erl]") || strings.Contains(v1, "iters") {
		t.Errorf("v1 (pre-feedback) store rendered equilibrium columns:\n%s", v1)
	}

	fb := run(writeCoupledStore(t, telemetry.CurrentFormat, true))
	for _, col := range []string{"foreign[erl]", "eq[erl]", "iters"} {
		if !strings.Contains(fb, col) {
			t.Errorf("feedback table missing %q:\n%s", col, fb)
		}
	}
}
