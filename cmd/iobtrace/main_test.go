package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wiban/internal/fleet"
	"wiban/internal/telemetry"
	"wiban/internal/units"
)

// writeSweep streams a miniature fleet into a telemetry store and
// returns its path plus the live fingerprint.
func writeSweep(t *testing.T) (string, string) {
	t.Helper()
	gen := &fleet.Generator{Base: fleet.DefaultBase(), PERSpread: 0.5, BatterySpread: 0.3}
	if err := gen.Validate(); err != nil {
		t.Fatal(err)
	}
	f := &fleet.Fleet{Wearers: 30, Seed: 7, Scenario: gen.Scenario(), Span: 5 * units.Second, Workers: 2}
	path := filepath.Join(t.TempDir(), "sweep.wtl")
	store, err := telemetry.Create(path, telemetry.Meta{
		FleetSeed: f.Seed, Wearers: f.Wearers, SpanSeconds: float64(f.Span),
		Scenario: gen.Tag(), BlockSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg := fleet.NewStreamAggregator(f.Span)
	if _, err := f.Stream(fleet.Tee(store, agg)); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	return path, agg.Report().Fingerprint()
}

// open returns a fresh reader for the store.
func open(t *testing.T, path string) *telemetry.Reader {
	t.Helper()
	r, err := telemetry.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestSubcommandsOnCompleteStore runs every subcommand body against a
// freshly written store.
func TestSubcommandsOnCompleteStore(t *testing.T) {
	path, want := writeSweep(t)

	if err := info(open(t, path)); err != nil {
		t.Errorf("info: %v", err)
	}
	if err := verify(open(t, path)); err != nil {
		t.Errorf("verify: %v", err)
	}
	if err := report(open(t, path)); err != nil {
		t.Errorf("report: %v", err)
	}
	if err := wearer(open(t, path), 17); err != nil {
		t.Errorf("wearer: %v", err)
	}
	if err := wearer(open(t, path), 99); err == nil || !strings.Contains(err.Error(), "not in store") {
		t.Errorf("missing wearer: err = %v", err)
	}

	// The re-derived aggregate matches the live sweep bit-for-bit.
	r := open(t, path)
	agg := fleet.NewStreamAggregator(units.Duration(r.Meta().SpanSeconds))
	if _, err := fleet.Replay(r, agg); err != nil {
		t.Fatal(err)
	}
	if got := agg.Report().Fingerprint(); got != want {
		t.Fatalf("re-aggregated fingerprint %s, live sweep %s", got, want)
	}
}

// TestVerifyFlagsCorruption flips a byte and demands verify fail loudly.
func TestVerifyFlagsCorruption(t *testing.T) {
	path, _ := writeSweep(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-9] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := verify(open(t, path)); err == nil {
		t.Fatal("verify accepted a corrupted store")
	}
}
