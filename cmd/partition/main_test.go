package main

import "testing"

// TestModelAndLinkBuilders covers the CLI's name → object tables,
// including the error paths the flag parser relies on.
func TestModelAndLinkBuilders(t *testing.T) {
	for _, name := range []string{"kws", "ecg", "vision"} {
		m, err := model(name)
		if err != nil || m == nil {
			t.Errorf("model(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := model("nope"); err == nil {
		t.Error("model accepted an unknown name")
	}
	for _, name := range []string{"wir", "ble", "bodywire", "subuw"} {
		l, err := link(name)
		if err != nil || l == nil {
			t.Errorf("link(%q) = %v, %v", name, l, err)
		}
	}
	if _, err := link("zigbee"); err == nil {
		t.Error("link accepted an unknown name")
	}
}
