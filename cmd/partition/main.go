// Command partition explores DNN split-computing between a wearable leaf
// node and the on-body hub across links.
//
// Usage:
//
//	partition -model kws -link wir          # per-cut table + optimum
//	partition -model vision -link ble -deadline 50ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wiban/internal/nn"
	"wiban/internal/partition"
	"wiban/internal/radio"
	"wiban/internal/units"
)

func model(name string) (*nn.Sequential, error) {
	switch name {
	case "kws":
		return nn.KWSNet(1)
	case "ecg":
		return nn.ECGNet(1)
	case "vision":
		return nn.VisionNet(1)
	default:
		return nil, fmt.Errorf("unknown model %q (kws|ecg|vision)", name)
	}
}

func link(name string) (*radio.Transceiver, error) {
	switch name {
	case "wir":
		return radio.WiR(), nil
	case "ble":
		return radio.BLE42(), nil
	case "bodywire":
		return radio.BodyWire(), nil
	case "subuw":
		return radio.SubUWrComm(), nil
	default:
		return nil, fmt.Errorf("unknown link %q (wir|ble|bodywire|subuw)", name)
	}
}

func main() {
	var (
		modelName = flag.String("model", "kws", "model: kws|ecg|vision")
		linkName  = flag.String("link", "wir", "link: wir|ble|bodywire|subuw")
		deadline  = flag.Duration("deadline", 0, "optional latency deadline (e.g. 50ms)")
		accel     = flag.Bool("accel", false, "use an ISA accelerator instead of an MCU on the leaf")
	)
	flag.Parse()

	m, err := model(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(2)
	}
	tr, err := link(*linkName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(2)
	}
	leaf := partition.LeafMCU()
	if *accel {
		leaf = partition.LeafAccelerator()
	}

	cuts, err := partition.Evaluate(partition.Config{
		Model: m, Leaf: leaf, Hub: partition.HubSoC(),
		Link: partition.FromTransceiver(tr), BitsPerElement: 8,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}

	fmt.Print(m.Summary())
	fmt.Printf("\nleaf %s, hub %s, link %s (%v, %v)\n\n",
		leaf.Name, partition.HubSoC().Name, tr.Name, tr.Goodput, tr.EnergyPerGoodBit())
	fmt.Printf("%-4s %12s %12s %14s %14s %12s\n",
		"cut", "leaf MACs", "tx bits", "leaf E/inf", "tx E/inf", "latency")
	for _, c := range cuts {
		fmt.Printf("%-4d %12d %12d %14v %14v %12v\n",
			c.Index, c.LeafMACs, c.TxBits, c.LeafEnergy, c.TxEnergy, c.Latency)
	}

	best, _ := partition.Best(cuts)
	fmt.Printf("\noptimal: %s\n", best.Describe())
	if *deadline > 0 {
		d := units.Duration(deadline.Seconds())
		constrained, err := partition.BestUnderLatency(cuts, d)
		if err != nil {
			fmt.Printf("deadline %v: %v\n", time.Duration(*deadline), err)
		} else {
			fmt.Printf("deadline %v: %s\n", time.Duration(*deadline), constrained.Describe())
		}
	}
	fmt.Println("\npareto front (leaf energy vs latency):")
	for _, c := range partition.Pareto(cuts) {
		fmt.Println("  " + c.Describe())
	}
}
