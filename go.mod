module wiban

go 1.21
