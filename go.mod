module wiban

go 1.22
